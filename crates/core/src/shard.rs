//! Multi-core processing through query-population sharding, with an
//! optional document-parallel Stage-1 front stage.
//!
//! The paper's Join Processor is a single-threaded component; its evaluation
//! is inherently shareable across queries but not, by itself, across cores.
//! [`ShardedEngine`] scales it out along two axes:
//!
//! **Replicated topology** (`front_pool == 0`, the original): the *query
//! population* is hash-partitioned across `N` independent [`MmqjpEngine`]
//! shards and the *document stream* is replicated to all of them. Each shard
//! runs on a long-lived worker thread, owns its own registry, join state and
//! view cache, and evaluates its query subset in the configured
//! [`ProcessingMode`](crate::ProcessingMode) — a shard is just a smaller
//! engine, so sharding composes with Sequential, MMQJP and MMQJP+VM alike.
//! Parse + Stage-1 cost multiplies with the shard count, because every shard
//! re-runs Stage 1 over every document.
//!
//! **Hybrid topology** (`front_pool >= 1`): a pool of Stage-1 *front
//! workers* parses and pattern-matches each document exactly once
//! (documents of a batch are range-partitioned across the pool), and a
//! [`WitnessRouter`] delivers the resulting witness rows to precisely the
//! shards whose queries subscribed to them. Shards run Stage 2 only, over
//! routed rows ([`RoutedBatch`]) — whole documents are shipped to shards
//! only when `retain_documents` requires them for `SELECT *` output
//! construction. Under [`process_batches`](ShardedEngine::process_batches)
//! the two stages are pipelined with an in-flight depth of one: the front
//! parses batch `k+1` while the shards join batch `k`.
//!
//! ```text
//!   replicated (front_pool = 0)         hybrid (front_pool >= 1)
//!
//!   docs ─▶ fan-out (clone/shard)       docs ─▶ front pool: parse once,
//!             │     │     │                     Stage 1 + single-blocks
//!             ▼     ▼     ▼                        │ witness rows
//!          ┌─────┐┌─────┐┌─────┐                   ▼
//!   qid ──▶│shard││shard││shard│             WitnessRouter
//!   hash   │ S1+ ││ S1+ ││ S1+ │           (per-shard subscription filter)
//!          │ S2  ││ S2  ││ S2  │              │     │     │
//!          └──┬──┘└──┬──┘└──┬──┘              ▼     ▼     ▼
//!             ▼     ▼     ▼                ┌─────┐┌─────┐┌─────┐
//!          canonical merge          qid ──▶│shard││shard││shard│
//!                                   hash   │ S2  ││ S2  ││ S2  │  Stage 2
//!                                          └──┬──┘└──┬──┘└──┬──┘  only
//!                                             ▼     ▼     ▼
//!                                          canonical merge
//! ```
//!
//! # Determinism
//!
//! In the replicated topology every shard sees the full document stream in
//! arrival order, so the shards assign identical document ids and timestamps
//! and each query produces exactly the matches it would produce in a single
//! engine. In the hybrid topology the front stage owns id/timestamp
//! assignment and routes each shard exactly the witness rows that shard
//! would have derived itself (the same canonical variables, interned through
//! the shared interner, filtered to the shard's requested edges) — so Stage 2
//! is fed byte-equal inputs either way. The merged batch output is sorted
//! into the canonical `(query, left_doc, right_doc, bindings)` order (see
//! [`sort_matches`](crate::sort_matches)), which makes the result
//! independent of topology, shard count and thread interleaving: a
//! `ShardedEngine` with any `N` and any front-pool size returns exactly a
//! canonically-sorted single-engine batch.
//!
//! # Thread-safety audit
//!
//! The engine state is `Send` by construction: the registry, witness
//! relations and view cache own their data outright (no `Rc`, no
//! thread-bound interior mutability), and the one shared component — the
//! [`StringInterner`] — is behind `Arc` + `RwLock` and is shared by all
//! shards so symbols stay comparable engine-wide. The `assert_send`
//! bindings at the bottom of this module enforce this at compile time.

use crate::audit::AuditViolation;
use crate::config::{EngineConfig, FaultPolicy};
use crate::engine::MmqjpEngine;
use crate::error::{CoreError, CoreResult};
use crate::fault::{FaultInjector, FaultKind, QuarantineRecord, WorkerFault};
use crate::output::{sort_matches, Binding, MatchOutput};
use crate::recovery::{self, ReplayLog, RetainedQuery};
use crate::relations::{RoutedBatch, WitnessBatch};
use crate::stats::EngineStats;
use mmqjp_relational::StringInterner;
use mmqjp_xml::{DocId, Document, Timestamp};
use mmqjp_xpath::{
    EdgeBinding, PatternId, PatternIndex, PatternMatcher, PatternNodeId, SharedPass, TreePattern,
};
use mmqjp_xscl::{QueryId, SelectClause, XsclQuery};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// A structural pattern edge, identified by its endpoint pattern nodes.
type Edge = (PatternNodeId, PatternNodeId);

/// A request sent to a shard worker thread. Every request carries a reply
/// channel; the worker answers each request exactly once, in order.
enum Request {
    /// Register a query under the given engine-global id. The reply carries
    /// the query's Stage-1 footprint so the hybrid front stage can mirror
    /// the subscription.
    Register {
        query: Box<XsclQuery>,
        global: QueryId,
        reply: Sender<CoreResult<Box<ShardFootprint>>>,
    },
    /// Unregister the query registered under the given engine-global id.
    Unregister {
        global: QueryId,
        reply: Sender<CoreResult<()>>,
    },
    /// Process a document batch and return the shard's matches, with query
    /// ids already translated back to engine-global ids (replicated
    /// topology: the shard runs Stage 1 itself).
    Batch {
        docs: Vec<Document>,
        /// Injected fault to deliver while serving this request (chaos
        /// harness only; always `None` in production).
        fault: Option<WorkerFault>,
        reply: Sender<CoreResult<Vec<MatchOutput>>>,
    },
    /// Process a routed witness batch (hybrid topology: Stage 1 already
    /// happened at the front) and return the shard's matches with
    /// engine-global query ids.
    Witness {
        routed: Box<RoutedBatch>,
        /// Injected fault to deliver while serving this request.
        fault: Option<WorkerFault>,
        reply: Sender<CoreResult<Vec<MatchOutput>>>,
    },
    /// Snapshot the shard's statistics.
    Stats { reply: Sender<EngineStats> },
    /// Run the shard engine's invariant audit (see [`MmqjpEngine::audit`])
    /// and return its violations.
    Audit { reply: Sender<Vec<AuditViolation>> },
}

/// The Stage-1 footprint of one registered query, reported by its owning
/// shard so the front stage can subscribe the shard to exactly the witness
/// rows the query needs.
struct ShardFootprint {
    /// Join-side patterns with their requested structural edges (one `prev`
    /// and one `cur` entry per registered orientation).
    patterns: Vec<(TreePattern, Vec<Edge>)>,
    /// Single-block subscription (pattern, publish target, select clause) —
    /// answered entirely at the front stage in hybrid mode.
    single: Option<(TreePattern, Option<String>, SelectClause)>,
}

/// One shard: the channel into its worker thread and the join handle.
struct Shard {
    sender: Option<Sender<Request>>,
    handle: Option<JoinHandle<()>>,
}

// ------------------------------------------------------------------------
// Witness routing (hybrid front stage)
// ------------------------------------------------------------------------

/// Routes Stage-1 witness rows to the query shards whose subscriptions
/// requested them.
///
/// Subscriptions are tracked per `(pattern, shard)` as refcounted edge sets
/// (the edge list preserves first-subscription order, mirroring the order
/// `Registry::requested_edges` would build on a replicated shard). Routing
/// one document appends to every shard's [`WitnessBatch`]: all shards get
/// the document's retention-ledger row (each shard tracks every timestamp
/// for temporal filtering), while the pattern bindings are filtered per
/// shard to exactly the edges it subscribed to — so a shard's batch holds
/// the same witness rows it would have derived by re-running Stage 1 over
/// its own requested-edge set.
///
/// The router is exported so the routing invariant can be exercised
/// directly by property tests: rows of a pattern edge travel to precisely
/// its subscribing shards (no broadcast), an edge with a single subscriber
/// lands on exactly one shard, and the union across shards restricted to
/// the subscribed edge sets reproduces the single-engine witness multiset.
#[derive(Debug, Clone, Default)]
pub struct WitnessRouter {
    subs: HashMap<PatternId, BTreeMap<usize, EdgeSubs>>,
}

/// One shard's refcounted edge subscriptions for one pattern.
#[derive(Debug, Clone, Default)]
struct EdgeSubs {
    /// Subscribed edges in first-subscription order.
    list: Vec<Edge>,
    refs: HashMap<Edge, usize>,
}

impl WitnessRouter {
    /// An empty router: no shard subscribes to anything.
    pub fn new() -> Self {
        WitnessRouter::default()
    }

    /// `true` when no shard subscribes to any pattern.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Subscribe `shard` to the given structural edges of `pattern`.
    /// Subscriptions are refcounted per `(shard, pattern, edge)`, so
    /// several queries of one shard can request overlapping edge sets.
    pub fn subscribe(&mut self, shard: usize, pattern: PatternId, edges: &[Edge]) {
        let subs = self
            .subs
            .entry(pattern)
            .or_default()
            .entry(shard)
            .or_default();
        for &edge in edges {
            let count = subs.refs.entry(edge).or_insert(0);
            if *count == 0 {
                subs.list.push(edge);
            }
            *count += 1;
        }
    }

    /// Release one subscription previously made with
    /// [`subscribe`](Self::subscribe). Edges whose last reference departs
    /// stop being routed; a pattern with no subscribing shard left is
    /// dropped from the routing table entirely.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Internal`] when the `(shard, pattern, edge)`
    /// subscription does not exist — unbalanced release calls are a
    /// bookkeeping bug, not a runtime condition.
    pub fn unsubscribe(
        &mut self,
        shard: usize,
        pattern: PatternId,
        edges: &[Edge],
    ) -> CoreResult<()> {
        let shards = self.subs.get_mut(&pattern).ok_or(CoreError::internal(
            "unsubscribe of a pattern with no subscriptions",
        ))?;
        let subs = shards.get_mut(&shard).ok_or(CoreError::internal(
            "unsubscribe of a shard that never subscribed",
        ))?;
        for edge in edges {
            let count = subs.refs.get_mut(edge).ok_or(CoreError::internal(
                "unsubscribe of an edge that was never subscribed",
            ))?;
            *count -= 1;
            if *count == 0 {
                subs.refs.remove(edge);
                subs.list.retain(|e| e != edge);
            }
        }
        if subs.refs.is_empty() {
            shards.remove(&shard);
        }
        if shards.is_empty() {
            self.subs.remove(&pattern);
        }
        Ok(())
    }

    /// The shards subscribed to a pattern, in ascending shard order.
    pub fn subscribers(&self, pattern: PatternId) -> Vec<usize> {
        self.subs
            .get(&pattern)
            .map(|shards| shards.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Route one document's Stage-1 output into per-shard witness batches
    /// (one batch slot per shard, `batches.len()` == shard count). Every
    /// batch receives the document's ledger row; witness rows go only to
    /// subscribing shards. Returns the number of witness rows appended
    /// across all batches (the routing fan-out of this document).
    pub fn route_document(
        &self,
        doc: &Document,
        bindings: &[(PatternId, Vec<EdgeBinding>)],
        index: &PatternIndex,
        interner: &Arc<StringInterner>,
        batches: &mut [WitnessBatch],
    ) -> CoreResult<usize> {
        let before: usize = batches.iter().map(WitnessBatch::num_witness_rows).sum();
        let mut per_shard: Vec<Vec<(&TreePattern, Vec<EdgeBinding>)>> =
            (0..batches.len()).map(|_| Vec::new()).collect();
        for (pid, edge_bindings) in bindings {
            let Some(shards) = self.subs.get(pid) else {
                continue;
            };
            let pattern = index.pattern(*pid);
            // Resolve each binding's pattern edge once; the per-shard loop
            // below only consults the precomputed edge.
            let edges: Vec<Edge> = edge_bindings
                .iter()
                .map(|b| binding_edge(pattern, b))
                .collect::<CoreResult<_>>()?;
            for (&shard, subs) in shards {
                let filtered: Vec<EdgeBinding> = edge_bindings
                    .iter()
                    .zip(&edges)
                    .filter(|(_, edge)| subs.refs.contains_key(edge))
                    .map(|(b, _)| b.clone())
                    .collect();
                if !filtered.is_empty() {
                    per_shard[shard].push((pattern, filtered));
                }
            }
        }
        for (batch, patterns) in batches.iter_mut().zip(&per_shard) {
            batch.add_document(doc, patterns, interner)?;
        }
        let after: usize = batches.iter().map(WitnessBatch::num_witness_rows).sum();
        Ok(after - before)
    }
}

/// The pattern edge a Stage-1 binding instantiates, recovered from its
/// variable names (edge bindings carry the canonical variables of their
/// pattern, which map back to unique pattern nodes).
fn binding_edge(pattern: &TreePattern, binding: &EdgeBinding) -> CoreResult<Edge> {
    Ok((
        pattern.variable_node(&binding.ancestor_var).map_err(|_| {
            CoreError::internal("edge binding ancestor variable exists in its pattern")
        })?,
        pattern
            .variable_node(&binding.descendant_var)
            .map_err(|_| {
                CoreError::internal("edge binding descendant variable exists in its pattern")
            })?,
    ))
}

// ------------------------------------------------------------------------
// Front stage (hybrid topology)
// ------------------------------------------------------------------------

/// A request to a Stage-1 front worker.
enum FrontRequest {
    /// Replace the worker's snapshot of the Stage-1 state. Sent after every
    /// subscription change; churn is rare relative to batches, so a
    /// full-clone broadcast keeps the per-document hot path lock-free.
    Sync {
        index: Box<PatternIndex>,
        requested: HashMap<PatternId, Vec<Edge>>,
        singles: Vec<FrontSingle>,
        reply: Sender<()>,
    },
    /// Parse a run of documents (ids and timestamps already assigned by the
    /// coordinator) and return their Stage-1 output.
    Parse {
        docs: Vec<Document>,
        /// Injected fault to deliver while serving this request.
        fault: Option<WorkerFault>,
        reply: Sender<ParsedChunk>,
    },
}

/// A single-block subscription evaluated at the front stage (its matches
/// never involve Stage 2, so in hybrid mode they are answered where the
/// document is parsed).
#[derive(Debug, Clone)]
struct FrontSingle {
    global: QueryId,
    pattern: TreePattern,
    publish: Option<String>,
    select: SelectClause,
}

/// One front worker's Stage-1 output for its slice of a batch.
struct ParsedChunk {
    docs: Vec<ParsedDoc>,
    /// Wall-clock time this worker spent on the slice (summed across the
    /// pool into the front's `timings.xpath` — total parse work, not
    /// elapsed time).
    elapsed: Duration,
}

/// Stage-1 output for one document.
struct ParsedDoc {
    doc: Document,
    bindings: Vec<(PatternId, Vec<EdgeBinding>)>,
    singles: Vec<MatchOutput>,
}

/// One front worker: the channel into its thread and the join handle.
#[derive(Debug)]
struct FrontWorker {
    sender: Option<Sender<FrontRequest>>,
    handle: Option<JoinHandle<()>>,
}

/// Per registered query: what the coordinator must release from the front
/// stage when the query unregisters.
#[derive(Debug)]
struct FrontFootprint {
    shard: usize,
    patterns: Vec<(PatternId, Vec<Edge>)>,
    single: bool,
}

/// The document-parallel Stage-1 front stage of the hybrid topology.
#[derive(Debug)]
struct FrontStage {
    workers: Vec<FrontWorker>,
    /// Master pattern index: the union of every shard's join-side patterns,
    /// refcounted per registration exactly like a `Registry`'s own index.
    index: PatternIndex,
    /// Global requested-edge union per pattern, in first-request order.
    requested: HashMap<PatternId, Vec<Edge>>,
    /// Refcounts behind [`requested`](Self::requested).
    edge_refs: HashMap<PatternId, HashMap<Edge, usize>>,
    router: WitnessRouter,
    /// Single-block subscriptions in ascending global-id order (the order a
    /// single engine evaluates them in).
    singles: Vec<FrontSingle>,
    footprints: HashMap<u64, FrontFootprint>,
    /// Front-stage statistics: `documents_processed` / `docs_parsed_once`
    /// (each document exactly once), `witnesses_routed`, `pipeline_stalls`,
    /// `results_emitted` (single-block matches) and `timings.xpath` (total
    /// Stage-1 work). All Stage-2 fields stay zero.
    stats: EngineStats,
    /// The global document sequence; in hybrid mode ids are assigned here,
    /// not in the shards.
    next_doc_seq: u64,
    /// Newest timestamp seen; in-order enforcement happens here, before
    /// anything is dispatched.
    newest_timestamp: u64,
}

/// The front stage's Stage-1 product for one batch, ready for dispatch.
struct StagedBatch {
    shard_batches: Vec<WitnessBatch>,
    doc_meta: Vec<(DocId, u64)>,
    /// The prepared documents — retained for shipping only when
    /// `retain_documents` is on, empty otherwise.
    docs: Vec<Document>,
    /// The front's single-block matches for this batch.
    singles: Vec<MatchOutput>,
    /// Replay-log entry (all stamped survivors); `None` under
    /// [`FaultPolicy::FailFast`].
    log_entry: Option<Vec<Document>>,
    /// Stream position before this batch was screened.
    position: (u64, u64),
}

/// One batch in flight at the shards.
struct InFlight {
    /// Per-shard reply channels, tagged with the shard index (under
    /// [`FaultPolicy::Degrade`] dead shards are skipped, so the indices are
    /// not necessarily contiguous).
    responses: Vec<(usize, Receiver<CoreResult<Vec<MatchOutput>>>)>,
    singles: Vec<MatchOutput>,
    /// The batch's stamped survivor documents — the replay-log entry,
    /// committed once collection completes (dispatched ⇒ eventually
    /// logged). Doubles as the replicated heal-retry payload. `None` under
    /// [`FaultPolicy::FailFast`] (no log is kept).
    log_entry: Option<Vec<Document>>,
    /// Hybrid heal-retry payloads, one slot per shard, populated only under
    /// [`FaultPolicy::Quarantine`]; each slot is taken at most once.
    retry_routed: Option<Vec<Option<RoutedBatch>>>,
    /// The stream position (documents ingested, newest timestamp) *before*
    /// this batch was screened — the position a healed shard must be
    /// rebuilt at, because the replay log does not yet contain this batch.
    position: (u64, u64),
}

/// Snapshot of the coordinator state mutated by Stage 1 of one batch; used
/// by the pipelined `process_batches` to undo a staged batch that the
/// previous batch's failure kept from ever being dispatched.
#[derive(Debug, Clone, Copy)]
struct Stage1Checkpoint {
    seq: u64,
    newest: u64,
    front_stats: EngineStats,
    quarantined: usize,
    docs_quarantined: usize,
}

/// How Stage-1 screening treats a poison (out-of-order) document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoisonHandling {
    /// Historical [`FaultPolicy::FailFast`] semantics: the poison document
    /// consumes its sequence number, then the batch fails.
    Consume,
    /// [`FaultPolicy::Quarantine`]: record the document and skip it without
    /// consuming a sequence number, so survivors get exactly the ids a
    /// fresh engine fed only survivors would assign.
    Quarantine,
    /// [`FaultPolicy::Degrade`] in the replicated topology: fail the batch
    /// atomically (no sequence numbers consumed, no dispatch), keeping the
    /// coordinator's watermark mirror in lockstep with shards that never
    /// saw the batch.
    Atomic,
}

/// A multi-core MMQJP engine: `N` independent [`MmqjpEngine`] shards over a
/// hash-partitioned query population, merged into a deterministic,
/// canonically-ordered match stream.
///
/// The API mirrors [`MmqjpEngine`]: register queries, then feed documents or
/// batches. [`EngineConfig::num_shards`] selects the shard count and
/// [`EngineConfig::front_pool`] the topology — `0` replicates every document
/// batch to every shard, `>= 1` parses each document once in a
/// document-parallel front stage and routes witness rows to subscribing
/// shards. Every other config knob applies to each shard individually.
///
/// ```
/// use mmqjp_core::{EngineConfig, ShardedEngine};
/// use mmqjp_xml::rss;
///
/// // Hybrid topology: 2 front workers parse once, 4 shards join.
/// let mut engine = ShardedEngine::new(
///     EngineConfig::default().with_num_shards(4).with_front_pool(2));
/// engine.register_query_text(
///     "S//book->x1[.//author->x2][.//title->x3] \
///      FOLLOWED BY{x2=x5 AND x3=x6, 100} \
///      S//blog->x4[.//author->x5][.//title->x6]",
/// ).unwrap();
///
/// let d1 = rss::book_announcement(&["Danny Ayers"], "RSS", &[], "Wrox", "0764579169");
/// let d2 = rss::blog_article("Danny Ayers", "http://...", "RSS", "Books", "...");
/// assert!(engine.process_document(d1).unwrap().is_empty());
/// assert_eq!(engine.process_document(d2).unwrap().len(), 1);
/// assert_eq!(engine.front_stats().docs_parsed_once, 2);
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    config: EngineConfig,
    interner: Arc<StringInterner>,
    shards: Vec<Shard>,
    front: Option<FrontStage>,
    queries_per_shard: Vec<usize>,
    next_query: u64,
    live_queries: usize,
    /// Replicated-topology mirror of every shard's document sequence.
    /// Maintained only when `fault_policy != FailFast`: the coordinator then
    /// screens and stamps batches itself (shards restamp identically), so it
    /// always knows the stream position a dead shard must be rebuilt at. In
    /// the hybrid topology the front stage owns these watermarks instead.
    mirror_seq: u64,
    /// Replicated-topology mirror of the newest timestamp; see
    /// [`mirror_seq`](Self::mirror_seq).
    mirror_newest: u64,
    /// Batches ingested so far — the index fault plans and quarantine
    /// records are keyed by. Counts every `process_batch` call (and every
    /// batch of a `process_batches` call), empty or not.
    batches_ingested: u64,
    /// Live subscriptions retained for recovery, keyed by global query id
    /// (ascending = original registration order). Empty under
    /// [`FaultPolicy::FailFast`].
    retained: BTreeMap<u64, RetainedQuery>,
    /// Bounded log of stamped survivor batches for replay; empty under
    /// [`FaultPolicy::FailFast`].
    replay_log: ReplayLog,
    /// Cached replay-log retention bound, recomputed on registration churn
    /// so eviction does not rescan every retained query per batch.
    retention: Option<u64>,
    /// Quarantined (poison) documents awaiting
    /// [`take_quarantine_records`](Self::take_quarantine_records).
    quarantine: Vec<QuarantineRecord>,
    /// Deterministic fault injector (chaos harness only); `None` in
    /// production.
    injector: Option<FaultInjector>,
    /// Faults scheduled for the batch currently being ingested, drained as
    /// each worker request is built.
    pending_faults: Vec<FaultKind>,
    /// Coordinator-side counters (`docs_quarantined`, `shards_respawned`,
    /// `faults_injected`, recovery timings) merged into
    /// [`stats`](Self::stats).
    supervisor_stats: EngineStats,
}

impl ShardedEngine {
    /// Create a sharded engine with [`EngineConfig::num_shards`] shards
    /// (a count of `0` is treated as `1`), each running the configured
    /// processing mode on its own worker thread. With
    /// [`EngineConfig::front_pool`]` >= 1`, additionally spawns that many
    /// Stage-1 front workers and switches to the hybrid topology.
    pub fn new(config: EngineConfig) -> Self {
        let num_shards = config.num_shards.max(1);
        let interner = Arc::new(StringInterner::new());
        let shards = (0..num_shards)
            .map(|i| {
                let engine = MmqjpEngine::with_interner(config.clone(), Arc::clone(&interner));
                spawn_shard_worker(i, engine, Vec::new())
                    // lint:allow one-time startup; a failed spawn leaves no engine to return
                    .expect("spawning a shard worker thread succeeds")
            })
            .collect();
        let front = (config.front_pool > 0).then(|| {
            let workers = (0..config.front_pool)
                .map(|i| {
                    spawn_front_worker(i, config.retain_documents, config.streaming_front)
                        // lint:allow one-time startup; a failed spawn leaves no engine to return
                        .expect("spawning a front worker thread succeeds")
                })
                .collect();
            FrontStage {
                workers,
                index: PatternIndex::default(),
                requested: HashMap::new(),
                edge_refs: HashMap::new(),
                router: WitnessRouter::new(),
                singles: Vec::new(),
                footprints: HashMap::new(),
                stats: EngineStats::default(),
                next_doc_seq: 0,
                newest_timestamp: 0,
            }
        });
        ShardedEngine {
            config,
            interner,
            shards,
            front,
            queries_per_shard: vec![0; num_shards],
            next_query: 0,
            live_queries: 0,
            mirror_seq: 0,
            mirror_newest: 0,
            batches_ingested: 0,
            retained: BTreeMap::new(),
            replay_log: ReplayLog::default(),
            retention: Some(0),
            quarantine: Vec::new(),
            injector: None,
            pending_faults: Vec::new(),
            supervisor_stats: EngineStats::default(),
        }
    }

    /// The engine configuration (shared by every shard).
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The number of Stage-1 front workers (`0` in the replicated topology).
    pub fn front_pool(&self) -> usize {
        self.front.as_ref().map_or(0, |f| f.workers.len())
    }

    /// Total number of live registered queries across all shards.
    pub fn num_queries(&self) -> usize {
        self.live_queries
    }

    /// Total number of query ids ever assigned (freed ids are tombstoned,
    /// never reused).
    pub fn total_queries_registered(&self) -> usize {
        self.next_query as usize
    }

    /// Number of live queries assigned to each shard, by shard index.
    pub fn queries_per_shard(&self) -> &[usize] {
        &self.queries_per_shard
    }

    /// The string interner shared by all shards.
    pub fn interner(&self) -> &Arc<StringInterner> {
        &self.interner
    }

    /// The shard a query id is assigned to.
    pub fn shard_of(&self, id: QueryId) -> usize {
        shard_of(id, self.shards.len())
    }

    /// The hybrid front stage's witness router, if the hybrid topology is
    /// enabled. Exposes the live subscription table for inspection.
    pub fn witness_router(&self) -> Option<&WitnessRouter> {
        self.front.as_ref().map(|f| &f.router)
    }

    /// Register a query from its textual XSCL form. Returns the query id.
    pub fn register_query_text(&mut self, text: &str) -> CoreResult<QueryId> {
        let query = mmqjp_xscl::parse_query(text)?;
        self.register_query(query)
    }

    /// Register a parsed query on the shard its id hashes to. Returns the
    /// engine-global query id, which matches the id a single [`MmqjpEngine`]
    /// registering the same queries in the same order would assign.
    pub fn register_query(&mut self, query: XsclQuery) -> CoreResult<QueryId> {
        let global = QueryId(self.next_query);
        let shard = shard_of(global, self.shards.len());
        // Under a recovering fault policy the coordinator retains each live
        // query (plus its arrival floor) so a dead shard can be rebuilt.
        let retain = (self.config.fault_policy != FaultPolicy::FailFast).then(|| RetainedQuery {
            query: query.clone(),
            floor: self.stream_position().0,
        });
        let (reply, response) = channel();
        self.send(
            shard,
            Request::Register {
                query: Box::new(query),
                global,
                reply,
            },
        )?;
        let footprint = response
            .recv()
            .map_err(|_| CoreError::ShardUnavailable { shard })??;
        // Failed registrations consume no id, matching the single engine.
        self.next_query += 1;
        self.live_queries += 1;
        self.queries_per_shard[shard] += 1;
        if let Some(retained) = retain {
            self.retained.insert(global.raw(), retained);
            self.refresh_retention();
        }
        if self.front.is_some() {
            self.front_subscribe(shard, global, *footprint)?;
        }
        Ok(global)
    }

    /// Unregister a query on the shard that owns it. Mirrors
    /// [`MmqjpEngine::unregister_query`]: the owning shard incrementally
    /// releases the query's footprint, and the freed id is never reused.
    /// Errors with [`CoreError::UnknownQuery`] for ids never assigned or
    /// already unregistered, and [`CoreError::ShardUnavailable`] if the
    /// owning shard's worker is gone.
    pub fn unregister_query(&mut self, id: QueryId) -> CoreResult<()> {
        let shard = shard_of(id, self.shards.len());
        let (reply, response) = channel();
        self.send(shard, Request::Unregister { global: id, reply })?;
        response
            .recv()
            .map_err(|_| CoreError::ShardUnavailable { shard })??;
        self.live_queries -= 1;
        self.queries_per_shard[shard] -= 1;
        if self.retained.remove(&id.raw()).is_some() {
            self.refresh_retention();
        }
        if self.front.is_some() {
            self.front_unsubscribe(id)?;
        }
        Ok(())
    }

    /// Process one document, returning its matches in canonical order.
    pub fn process_document(&mut self, doc: Document) -> CoreResult<Vec<MatchOutput>> {
        self.process_batch(vec![doc])
    }

    /// Process a batch of documents in arrival order.
    ///
    /// Replicated topology: the batch is fanned out to every shard (each
    /// shard maintains the full join state for its query subset). Hybrid
    /// topology: the front pool runs Stage 1 once and the shards receive
    /// routed witness rows. Either way the per-shard matches are collected
    /// and merged into the canonical `(query, left_doc, right_doc,
    /// bindings)` order. The batched-evaluation trade-off of
    /// [`MmqjpEngine::process_batch`] applies unchanged.
    pub fn process_batch(&mut self, docs: Vec<Document>) -> CoreResult<Vec<MatchOutput>> {
        let batch_index = self.begin_batch();
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        if self.front.is_some() {
            let staged = self.front_stage1(docs, batch_index)?;
            let in_flight = self.dispatch_routed(staged)?;
            return self.collect_shard_outputs(in_flight, false);
        }
        self.process_batch_replicated(docs, batch_index)
    }

    /// Replicated-topology batch processing: screen (when a recovering fault
    /// policy is active), then fan the batch out to all live shards before
    /// collecting any reply so the shards process it concurrently.
    fn process_batch_replicated(
        &mut self,
        docs: Vec<Document>,
        batch_index: u64,
    ) -> CoreResult<Vec<MatchOutput>> {
        let policy = self.config.fault_policy;
        let position = (self.mirror_seq, self.mirror_newest);
        // Under a recovering policy the coordinator screens and stamps the
        // batch itself: shards then see only clean survivors (restamping
        // them identically), and the stamped batch is what the replay log
        // keeps. Under FailFast the shards screen as before and the
        // coordinator stays off the hot path entirely.
        let docs = if policy == FaultPolicy::FailFast {
            docs
        } else {
            let survivors = screen_and_stamp(
                docs,
                &mut self.mirror_seq,
                &mut self.mirror_newest,
                self.config.enforce_in_order,
                poison_handling(policy),
                batch_index,
                &mut self.quarantine,
                &mut self.supervisor_stats.docs_quarantined,
            )?;
            if survivors.is_empty() {
                return Ok(Vec::new());
            }
            survivors
        };
        let log_entry = (policy != FaultPolicy::FailFast).then(|| docs.clone());
        // Only Degrade serves around a dead shard; under any other policy a
        // dead shard at dispatch time is a hard availability error (the
        // send below reports it).
        let live: Vec<usize> = (0..self.shards.len())
            .filter(|&s| policy != FaultPolicy::Degrade || self.shards[s].sender.is_some())
            .collect();
        let Some(&last) = live.last() else {
            return Err(CoreError::ShardUnavailable { shard: 0 });
        };
        // The last live shard takes ownership of the batch; the others get
        // clones.
        let mut responses = Vec::with_capacity(live.len());
        let mut docs = Some(docs);
        for &shard in &live {
            let batch = if shard == last {
                // lint:allow the loop takes the batch only on its final iteration
                docs.take().expect("batch is moved out exactly once")
            } else {
                // lint:allow the loop takes the batch only on its final iteration
                docs.as_ref().expect("batch not yet moved").clone()
            };
            let fault = self.worker_fault_for_shard(shard);
            let (reply, response) = channel();
            self.send(
                shard,
                Request::Batch {
                    docs: batch,
                    fault,
                    reply,
                },
            )?;
            responses.push((shard, response));
        }
        self.collect_shard_outputs(
            InFlight {
                responses,
                singles: Vec::new(),
                log_entry,
                retry_routed: None,
                position,
            },
            false,
        )
    }

    /// Process a sequence of batches, returning each batch's canonical
    /// matches in order. Equivalent to calling
    /// [`process_batch`](Self::process_batch) per batch — same outputs,
    /// same state — but in the hybrid topology the stages are pipelined
    /// with an in-flight depth of one: the front pool parses batch `k+1`
    /// while the shards join batch `k`. Batches whose Stage-1 output was
    /// ready before the shards finished the previous batch are counted in
    /// [`EngineStats::pipeline_stalls`] (the front waited on Stage 2).
    ///
    /// On error the failing batch's [`CoreError`] is returned and the
    /// outputs of earlier batches in the same call are discarded; the
    /// shards stay drained and synchronized, so processing can continue
    /// with the next batch, exactly like the single engine after a rejected
    /// batch.
    pub fn process_batches(
        &mut self,
        batches: Vec<Vec<Document>>,
    ) -> CoreResult<Vec<Vec<MatchOutput>>> {
        if self.front.is_none() {
            return batches
                .into_iter()
                .map(|batch| self.process_batch(batch))
                .collect();
        }
        let mut results = Vec::with_capacity(batches.len());
        let mut in_flight: Option<InFlight> = None;
        for batch in batches {
            let batch_index = self.begin_batch();
            if batch.is_empty() {
                // Nothing to parse or dispatch; settle the pipeline so the
                // empty result lands at the right position.
                if let Some(prev) = in_flight.take() {
                    results.push(self.collect_shard_outputs(prev, false)?);
                }
                results.push(Vec::new());
                continue;
            }
            // Checkpoint the front's Stage-1 side effects: if collecting the
            // *previous* batch fails below, the staged batch is dropped
            // undispatched and must leave no trace, or the document sequence
            // would drift ahead of what the shards (and a single engine fed
            // the same stream) ever saw.
            let checkpoint = self.checkpoint_stage1();
            let staged = match self.front_stage1(batch, batch_index) {
                Ok(staged) => staged,
                Err(e) => {
                    // Drain the in-flight batch before propagating, keeping
                    // the shards synchronized for the next call.
                    if let Some(prev) = in_flight.take() {
                        let _ = self.collect_shard_outputs(prev, false);
                    }
                    return Err(e);
                }
            };
            if let Some(prev) = in_flight.take() {
                match self.collect_shard_outputs(prev, true) {
                    Ok(outputs) => results.push(outputs),
                    Err(e) => {
                        self.rollback_stage1(checkpoint);
                        return Err(e);
                    }
                }
            }
            in_flight = Some(self.dispatch_routed(staged)?);
        }
        if let Some(prev) = in_flight.take() {
            results.push(self.collect_shard_outputs(prev, false)?);
        }
        Ok(results)
    }

    /// Snapshot every piece of coordinator state `front_stage1` mutates, so
    /// a staged-but-never-dispatched batch can be undone. Worker threads
    /// hold no per-batch state (parsing is snapshot-pure), so restoring
    /// these fields is a complete rollback.
    fn checkpoint_stage1(&self) -> Stage1Checkpoint {
        let (seq, newest, stats) = match &self.front {
            Some(front) => (front.next_doc_seq, front.newest_timestamp, front.stats),
            None => (self.mirror_seq, self.mirror_newest, EngineStats::default()),
        };
        Stage1Checkpoint {
            seq,
            newest,
            front_stats: stats,
            quarantined: self.quarantine.len(),
            docs_quarantined: self.supervisor_stats.docs_quarantined,
        }
    }

    /// Undo the Stage-1 side effects of a staged batch that was never
    /// dispatched (see [`checkpoint_stage1`](Self::checkpoint_stage1)).
    fn rollback_stage1(&mut self, checkpoint: Stage1Checkpoint) {
        match self.front.as_mut() {
            Some(front) => {
                front.next_doc_seq = checkpoint.seq;
                front.newest_timestamp = checkpoint.newest;
                front.stats = checkpoint.front_stats;
            }
            None => {
                self.mirror_seq = checkpoint.seq;
                self.mirror_newest = checkpoint.newest;
            }
        }
        self.quarantine.truncate(checkpoint.quarantined);
        self.supervisor_stats.docs_quarantined = checkpoint.docs_quarantined;
    }

    // ------------------------------------------------------------------
    // Failure model
    // ------------------------------------------------------------------

    /// Install a deterministic fault injector. Each subsequent batch asks
    /// the injector for its scheduled faults ([`FaultKind`]) and delivers
    /// the worker-directed ones (panic a shard, drop a reply, panic a front
    /// worker) while serving that batch. Document-content faults are the
    /// chaos harness's job — it owns the input stream and must mutate the
    /// reference stream identically — so the engine ignores them.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Drain the quarantined-document records accumulated since the last
    /// call (only [`FaultPolicy::Quarantine`] produces any). Each record
    /// pins the poison document by `(batch, doc_index)` of the ingestion
    /// call that rejected it.
    pub fn take_quarantine_records(&mut self) -> Vec<QuarantineRecord> {
        std::mem::take(&mut self.quarantine)
    }

    /// The bounded replay log backing shard recovery. Empty under
    /// [`FaultPolicy::FailFast`].
    pub fn replay_log(&self) -> &ReplayLog {
        &self.replay_log
    }

    /// Shards whose worker has died and not (yet) been respawned. Always
    /// empty under [`FaultPolicy::Quarantine`] between calls (dead shards
    /// are healed inline) and under [`FaultPolicy::FailFast`] before the
    /// first failure.
    pub fn degraded_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.sender.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Respawn shard `shard`'s worker with deterministically rebuilt state:
    /// a fresh engine, the shard's surviving subscriptions re-registered at
    /// their original arrival floors, and the retained document stream
    /// replayed (see [`recovery`]). Requires a recovering fault policy —
    /// under [`FaultPolicy::FailFast`] nothing is retained to rebuild from,
    /// so this errors with [`CoreError::ShardUnavailable`]. Under
    /// [`FaultPolicy::Quarantine`] the supervisor calls this automatically;
    /// under [`FaultPolicy::Degrade`] call it manually to restore a
    /// degraded shard.
    pub fn respawn_shard(&mut self, shard: usize) -> CoreResult<()> {
        let (ingested, newest) = self.stream_position();
        self.respawn_shard_at(shard, ingested, newest)
    }

    /// [`respawn_shard`](Self::respawn_shard) at an explicit stream
    /// position — the supervisor heals mid-collection, when the watermarks
    /// already include the in-flight batch that the replay log does not.
    fn respawn_shard_at(&mut self, shard: usize, ingested: u64, newest: u64) -> CoreResult<()> {
        if self.config.fault_policy == FaultPolicy::FailFast {
            return Err(CoreError::ShardUnavailable { shard });
        }
        let t0 = Instant::now();
        self.retire_shard(shard);
        let queries: Vec<(u64, RetainedQuery)> = self
            .retained
            .iter()
            .filter(|(global, _)| shard_of(QueryId(**global), self.shards.len()) == shard)
            .map(|(global, retained)| (*global, retained.clone()))
            .collect();
        let (engine, globals, _rows) = recovery::rebuild_shard_engine(
            &self.config,
            &self.interner,
            &queries,
            &self.replay_log,
            ingested,
            newest,
        )?;
        let globals = globals.into_iter().map(QueryId).collect();
        self.shards[shard] = spawn_shard_worker(shard, engine, globals)
            .map_err(|_| CoreError::ShardUnavailable { shard })?;
        self.supervisor_stats.shards_respawned += 1;
        self.supervisor_stats.timings.recovery += t0.elapsed();
        Ok(())
    }

    /// Retire a dead or desynchronized shard worker: close its request
    /// channel (ending its loop if it is still alive) and reap the thread.
    fn retire_shard(&mut self, shard: usize) {
        self.shards[shard].sender = None;
        if let Some(handle) = self.shards[shard].handle.take() {
            let _ = handle.join();
        }
    }

    /// Heal a shard that died while serving the in-flight batch: respawn it
    /// at the pre-batch stream position (the replay log does not contain
    /// the in-flight batch yet), then re-serve it this batch's payload —
    /// fault-free — and return its matches. The rebuilt state plus the
    /// retried batch leave the shard byte-identical to one that never died.
    fn heal_shard(
        &mut self,
        shard: usize,
        log_entry: &Option<Vec<Document>>,
        retry_routed: &mut Option<Vec<Option<RoutedBatch>>>,
        position: (u64, u64),
    ) -> CoreResult<Vec<MatchOutput>> {
        let t0 = Instant::now();
        self.respawn_shard_at(shard, position.0, position.1)?;
        let (reply, response) = channel();
        match retry_routed.as_mut() {
            Some(per_shard) => {
                let routed = per_shard
                    .get_mut(shard)
                    .and_then(Option::take)
                    .ok_or(CoreError::ShardUnavailable { shard })?;
                self.send(
                    shard,
                    Request::Witness {
                        routed: Box::new(routed),
                        fault: None,
                        reply,
                    },
                )?;
            }
            None => {
                let docs = log_entry
                    .clone()
                    .ok_or(CoreError::ShardUnavailable { shard })?;
                self.send(
                    shard,
                    Request::Batch {
                        docs,
                        fault: None,
                        reply,
                    },
                )?;
            }
        }
        let outputs = response
            .recv()
            .map_err(|_| CoreError::ShardUnavailable { shard })?;
        self.supervisor_stats.timings.recovery += t0.elapsed();
        outputs
    }

    /// Advance the batch counter and fetch the faults scheduled for the new
    /// batch, if an injector is installed.
    fn begin_batch(&mut self) -> u64 {
        let index = self.batches_ingested;
        self.batches_ingested += 1;
        self.pending_faults = match self.injector.as_mut() {
            Some(injector) => injector.faults_for(index),
            None => Vec::new(),
        };
        index
    }

    /// Drain the pending worker fault aimed at shard `shard` for the
    /// current batch, if any.
    fn worker_fault_for_shard(&mut self, shard: usize) -> Option<WorkerFault> {
        let position = self.pending_faults.iter().position(|f| {
            matches!(f, FaultKind::PanicShard { shard: s } if *s == shard)
                || matches!(f, FaultKind::DropResponse { shard: s } if *s == shard)
        })?;
        let fault = match self.pending_faults.swap_remove(position) {
            FaultKind::PanicShard { .. } => WorkerFault::Panic,
            FaultKind::DropResponse { .. } => WorkerFault::DropReply,
            _ => return None,
        };
        self.supervisor_stats.faults_injected += 1;
        Some(fault)
    }

    /// Drain the pending worker fault aimed at front worker `worker` for
    /// the current batch, if any.
    fn worker_fault_for_front(&mut self, worker: usize) -> Option<WorkerFault> {
        let position = self
            .pending_faults
            .iter()
            .position(|f| matches!(f, FaultKind::PanicFront { worker: w } if *w == worker))?;
        self.pending_faults.swap_remove(position);
        self.supervisor_stats.faults_injected += 1;
        Some(WorkerFault::Panic)
    }

    /// The global stream position: documents ingested and the newest
    /// timestamp. Owned by the front stage in the hybrid topology and by
    /// the coordinator's mirror in the replicated one.
    fn stream_position(&self) -> (u64, u64) {
        match &self.front {
            Some(front) => (front.next_doc_seq, front.newest_timestamp),
            None => (self.mirror_seq, self.mirror_newest),
        }
    }

    /// Recompute the cached replay-log retention bound from the retained
    /// query population.
    fn refresh_retention(&mut self) {
        self.retention = recovery::retention_bound(
            self.retained.values().map(|r| &r.query),
            self.config.doc_retention_cap,
        );
    }

    /// Aggregate statistics: the field-wise sum of every shard's
    /// [`EngineStats`], plus the front stage's own stats in the hybrid
    /// topology (see the `Sum` impl on [`EngineStats`] for the exact
    /// semantics — notably `documents_processed` counts per-shard work in
    /// the replicated topology, so it is `num_shards ×` the number of
    /// ingested documents there, while the hybrid front counts each
    /// document exactly once), plus the coordinator's own failure-model
    /// counters (`docs_quarantined`, `shards_respawned`, `faults_injected`
    /// and recovery timings). Errors with [`CoreError::ShardUnavailable`]
    /// if a shard worker is gone — except under [`FaultPolicy::Degrade`],
    /// where dead shards contribute zeroes (their state died with them).
    pub fn stats(&self) -> CoreResult<EngineStats> {
        let mut total: EngineStats = self.shard_stats()?.into_iter().sum();
        if let Some(front) = &self.front {
            total += front.stats;
        }
        total += self.supervisor_stats;
        Ok(total)
    }

    /// The hybrid front stage's statistics: `docs_parsed_once`,
    /// `witnesses_routed`, `pipeline_stalls`, single-block
    /// `results_emitted` and Stage-1 `timings.xpath`. All-zero in the
    /// replicated topology (which has no front stage).
    pub fn front_stats(&self) -> EngineStats {
        self.front.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Per-shard statistics snapshots, by shard index. Under
    /// [`FaultPolicy::Degrade`] a dead shard reports all-zero stats (its
    /// state died with it); under any other policy a dead shard errors with
    /// [`CoreError::ShardUnavailable`].
    pub fn shard_stats(&self) -> CoreResult<Vec<EngineStats>> {
        let degrade = self.config.fault_policy == FaultPolicy::Degrade;
        let mut responses = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            if degrade && self.shards[shard].sender.is_none() {
                responses.push(None);
                continue;
            }
            let (reply, response) = channel();
            self.send(shard, Request::Stats { reply })?;
            responses.push(Some(response));
        }
        responses
            .into_iter()
            .enumerate()
            .map(|(shard, response)| match response {
                Some(response) => response
                    .recv()
                    .map_err(|_| CoreError::ShardUnavailable { shard }),
                None => Ok(EngineStats::default()),
            })
            .collect()
    }

    /// Run a full invariant audit across the topology: every shard engine's
    /// own [`MmqjpEngine::audit`] (violations come back wrapped in
    /// [`AuditViolation::Shard`]), the coordinator's per-shard query
    /// accounting, and — in the hybrid topology — the front stage's mirrored
    /// subscription state (master pattern index, global requested-edge
    /// union, witness-router table and single-block list), each recomputed
    /// from the live query footprints. When a recovering fault policy is
    /// active, additionally checks the recovery machinery itself: the
    /// retained-query ledger tracks every live query and the replay log
    /// stays within its retention bound. Read-only; a healthy engine
    /// returns an empty vector. Errors with [`CoreError::ShardUnavailable`]
    /// if a shard worker is gone — except under [`FaultPolicy::Degrade`],
    /// where dead shards are skipped (they have no state left to audit).
    pub fn audit(&self) -> CoreResult<Vec<AuditViolation>> {
        let degrade = self.config.fault_policy == FaultPolicy::Degrade;
        let mut out = Vec::new();
        let mut responses = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            if degrade && self.shards[shard].sender.is_none() {
                responses.push(None);
                continue;
            }
            let (reply, response) = channel();
            self.send(shard, Request::Audit { reply })?;
            responses.push(Some(response));
        }
        for (shard, response) in responses.into_iter().enumerate() {
            let Some(response) = response else { continue };
            let violations = response
                .recv()
                .map_err(|_| CoreError::ShardUnavailable { shard })?;
            out.extend(
                violations
                    .into_iter()
                    .map(|violation| AuditViolation::Shard {
                        shard,
                        violation: Box::new(violation),
                    }),
            );
        }

        let summed: usize = self.queries_per_shard.iter().sum();
        if summed != self.live_queries {
            out.push(AuditViolation::QueriesPerShardSum {
                tracked: self.live_queries,
                summed,
            });
        }

        if self.config.fault_policy != FaultPolicy::FailFast {
            if self.retained.len() != self.live_queries {
                out.push(AuditViolation::RetainedQueryCount {
                    retained: self.retained.len(),
                    live: self.live_queries,
                });
            }
            if let (Some(oldest), Some(bound)) =
                (self.replay_log.oldest_entry_max_ts(), self.retention)
            {
                let cutoff = self.stream_position().1.saturating_sub(bound);
                if oldest < cutoff {
                    out.push(AuditViolation::ReplayLogOverRetention { oldest, cutoff });
                }
            }
        }

        if let Some(front) = &self.front {
            // Hybrid shards never count documents themselves; the front
            // stage counts each exactly once.
            for (shard, stats) in self.shard_stats()?.into_iter().enumerate() {
                if stats.documents_processed != 0 {
                    out.push(AuditViolation::HybridShardCountsDocuments {
                        shard,
                        documents: stats.documents_processed,
                    });
                }
            }
            self.audit_front(front, &mut out);
        }
        Ok(out)
    }

    /// Recompute the front stage's expected subscription state from its live
    /// query footprints and compare it against the maintained mirrors.
    fn audit_front(&self, front: &FrontStage, out: &mut Vec<AuditViolation>) {
        if front.footprints.len() != self.live_queries {
            out.push(AuditViolation::FrontSubscription {
                pattern: u32::MAX,
                reason: "footprint count differs from the live queries",
            });
        }

        // One recount pass over the footprints: master-index refcounts, the
        // global edge union, per-shard router subscriptions and singles.
        let mut pattern_expected: HashMap<PatternId, usize> = HashMap::new();
        let mut edge_expected: HashMap<PatternId, HashMap<Edge, usize>> = HashMap::new();
        let mut router_expected: HashMap<PatternId, BTreeMap<usize, HashMap<Edge, usize>>> =
            HashMap::new();
        let mut singles_expected = 0usize;
        for footprint in front.footprints.values() {
            if footprint.single {
                singles_expected += 1;
            }
            for (pid, edges) in &footprint.patterns {
                *pattern_expected.entry(*pid).or_insert(0) += 1;
                let per_edge = edge_expected.entry(*pid).or_default();
                let per_shard = router_expected
                    .entry(*pid)
                    .or_default()
                    .entry(footprint.shard)
                    .or_default();
                for edge in edges {
                    *per_edge.entry(*edge).or_insert(0) += 1;
                    *per_shard.entry(*edge).or_insert(0) += 1;
                }
            }
        }

        // Master pattern index, both directions.
        let indexed: HashMap<PatternId, usize> = front
            .index
            .patterns()
            .map(|(pid, _)| (pid, front.index.refcount(pid)))
            .collect();
        for (&pid, &refs) in &indexed {
            let expected = pattern_expected.get(&pid).copied().unwrap_or(0);
            if refs != expected {
                out.push(AuditViolation::PatternRefcount {
                    pattern: pid.raw(),
                    index_refs: refs,
                    expected,
                });
            }
        }
        for (&pid, &expected) in &pattern_expected {
            if !indexed.contains_key(&pid) {
                out.push(AuditViolation::PatternRefcount {
                    pattern: pid.raw(),
                    index_refs: 0,
                    expected,
                });
            }
        }

        // Global requested-edge union and its refcounts.
        crate::registry::audit_edge_tables(&edge_expected, &front.edge_refs, &front.requested, out);

        // Router table: per (pattern, shard), the refcounted edge set and
        // its first-subscription-order list mirror the footprints.
        let all_pids: std::collections::BTreeSet<PatternId> = router_expected
            .keys()
            .chain(front.router.subs.keys())
            .copied()
            .collect();
        for pid in all_pids {
            let want = router_expected.get(&pid);
            let have = front.router.subs.get(&pid);
            let shards: std::collections::BTreeSet<usize> = want
                .into_iter()
                .flat_map(BTreeMap::keys)
                .chain(have.into_iter().flat_map(BTreeMap::keys))
                .copied()
                .collect();
            for shard in shards {
                let want_edges = want.and_then(|m| m.get(&shard));
                let have_subs = have.and_then(|m| m.get(&shard));
                let want_total: usize = want_edges.map_or(0, |m| m.values().sum());
                let have_total: usize = have_subs.map_or(0, |s| s.refs.values().sum());
                let refs_match = match (want_edges, have_subs) {
                    (None, None) => true,
                    (Some(w), Some(s)) => *w == s.refs,
                    _ => want_total == 0 && have_total == 0,
                };
                if !refs_match {
                    out.push(AuditViolation::FrontSubscription {
                        pattern: pid.raw(),
                        reason: "router edge refcounts differ from the live footprints",
                    });
                }
                if let Some(subs) = have_subs {
                    let mut seen = std::collections::HashSet::new();
                    if !subs.list.iter().all(|e| seen.insert(*e)) {
                        out.push(AuditViolation::FrontSubscription {
                            pattern: pid.raw(),
                            reason: "duplicate edge in a router subscription list",
                        });
                    }
                    if seen != subs.refs.keys().copied().collect() {
                        out.push(AuditViolation::FrontSubscription {
                            pattern: pid.raw(),
                            reason: "router subscription list does not mirror its refcounts",
                        });
                    }
                }
            }
        }

        // Single-block subscriptions: count and membership.
        if front.singles.len() != singles_expected {
            out.push(AuditViolation::FrontSinglesCount {
                listed: front.singles.len(),
                expected: singles_expected,
            });
        }
        for single in &front.singles {
            let covered = front
                .footprints
                .get(&single.global.raw())
                .is_some_and(|f| f.single);
            if !covered {
                out.push(AuditViolation::FrontSubscription {
                    pattern: u32::MAX,
                    reason: "front single-block entry has no live footprint",
                });
            }
        }
    }

    fn send(&self, shard: usize, request: Request) -> CoreResult<()> {
        self.shards[shard]
            .sender
            .as_ref()
            .ok_or(CoreError::ShardUnavailable { shard })?
            .send(request)
            .map_err(|_| CoreError::ShardUnavailable { shard })
    }

    // ----------------------------------------------------------------
    // Hybrid topology internals
    // ----------------------------------------------------------------

    /// Mirror a freshly registered query's Stage-1 footprint into the front
    /// stage: merge its patterns into the master index and the global
    /// requested-edge union, subscribe its shard in the router, take over
    /// its single-block subscription, and re-sync the front workers.
    fn front_subscribe(
        &mut self,
        shard: usize,
        global: QueryId,
        footprint: ShardFootprint,
    ) -> CoreResult<()> {
        let front = self
            .front
            .as_mut()
            .ok_or(CoreError::internal("hybrid topology is enabled"))?;
        let mut resolved = Vec::with_capacity(footprint.patterns.len());
        for (pattern, edges) in footprint.patterns {
            let pid = front.index.register(pattern);
            let refs = front.edge_refs.entry(pid).or_default();
            let list = front.requested.entry(pid).or_default();
            for &edge in &edges {
                let count = refs.entry(edge).or_insert(0);
                if *count == 0 {
                    list.push(edge);
                }
                *count += 1;
            }
            front.router.subscribe(shard, pid, &edges);
            resolved.push((pid, edges));
        }
        let single = footprint.single.is_some();
        if let Some((pattern, publish, select)) = footprint.single {
            // Global ids are assigned in ascending order and never reused,
            // so pushing keeps the list in single-engine evaluation order.
            front.singles.push(FrontSingle {
                global,
                pattern,
                publish,
                select,
            });
        }
        front.footprints.insert(
            global.raw(),
            FrontFootprint {
                shard,
                patterns: resolved,
                single,
            },
        );
        self.sync_front()
    }

    /// Release a departing query's front-stage footprint (the inverse of
    /// [`front_subscribe`](Self::front_subscribe)) and re-sync the workers.
    fn front_unsubscribe(&mut self, global: QueryId) -> CoreResult<()> {
        let front = self
            .front
            .as_mut()
            .ok_or(CoreError::internal("hybrid topology is enabled"))?;
        let footprint = front
            .footprints
            .remove(&global.raw())
            .ok_or(CoreError::internal("a live query has a front footprint"))?;
        for (pid, edges) in &footprint.patterns {
            front.router.unsubscribe(footprint.shard, *pid, edges)?;
            let refs = front.edge_refs.get_mut(pid).ok_or(CoreError::internal(
                "a subscribed pattern has edge refcounts",
            ))?;
            let list = front.requested.get_mut(pid).ok_or(CoreError::internal(
                "a subscribed pattern has requested edges",
            ))?;
            for edge in edges {
                let count = refs
                    .get_mut(edge)
                    .ok_or(CoreError::internal("a requested edge is refcounted"))?;
                *count -= 1;
                if *count == 0 {
                    refs.remove(edge);
                    list.retain(|e| e != edge);
                }
            }
            if refs.is_empty() {
                front.edge_refs.remove(pid);
                front.requested.remove(pid);
            }
            front.index.unregister(*pid);
        }
        if footprint.single {
            front.singles.retain(|s| s.global != global);
        }
        self.sync_front()
    }

    /// Broadcast the current Stage-1 snapshot (master index, requested-edge
    /// union, single-block list) to every front worker and wait for their
    /// acknowledgements, so the next batch is parsed against the updated
    /// subscriptions.
    fn sync_front(&mut self) -> CoreResult<()> {
        let front = self
            .front
            .as_mut()
            .ok_or(CoreError::internal("hybrid topology is enabled"))?;
        let mut acks = Vec::with_capacity(front.workers.len());
        for (i, worker) in front.workers.iter().enumerate() {
            let (reply, response) = channel();
            worker
                .sender
                .as_ref()
                .ok_or(CoreError::ShardUnavailable { shard: i })?
                .send(FrontRequest::Sync {
                    index: Box::new(front.index.clone()),
                    requested: front.requested.clone(),
                    singles: front.singles.clone(),
                    reply,
                })
                .map_err(|_| CoreError::ShardUnavailable { shard: i })?;
            acks.push(response);
        }
        for (i, ack) in acks.into_iter().enumerate() {
            ack.recv()
                .map_err(|_| CoreError::ShardUnavailable { shard: i })?;
        }
        Ok(())
    }

    /// Run Stage 1 for one batch: assign ids/timestamps (the front owns the
    /// global sequence), enforce in-order arrival (quarantining poison
    /// documents under [`FaultPolicy::Quarantine`] instead of failing),
    /// parse and pattern-match document-parallel across the front pool,
    /// answer single-block subscriptions, and route the witness rows into
    /// per-shard batches. A front worker that dies mid-parse is respawned
    /// and its slice retried under [`FaultPolicy::Quarantine`]; under any
    /// other policy its death fails the batch.
    fn front_stage1(&mut self, docs: Vec<Document>, batch_index: u64) -> CoreResult<StagedBatch> {
        let num_shards = self.shards.len();
        let retain_documents = self.config.retain_documents;
        let streaming = self.config.streaming_front;
        let enforce_in_order = self.config.enforce_in_order;
        let policy = self.config.fault_policy;
        // Drain worker-directed faults before borrowing the front stage.
        let front_faults: Vec<Option<WorkerFault>> = (0..self.config.front_pool)
            .map(|worker| self.worker_fault_for_front(worker))
            .collect();
        let front = self
            .front
            .as_mut()
            .ok_or(CoreError::internal("hybrid topology is enabled"))?;
        let position = (front.next_doc_seq, front.newest_timestamp);

        // Mirror the single engine's Stage-1 loop: ids/timestamps are
        // assigned per document in arrival order. Outside Quarantine a
        // rejected document aborts the whole batch before anything reaches
        // a shard (the sequence numbers consumed so far stay consumed,
        // exactly like `MmqjpEngine::process_batch`); under Quarantine the
        // poison document is recorded and skipped without consuming a
        // sequence number.
        let handling = match policy {
            FaultPolicy::Quarantine => PoisonHandling::Quarantine,
            FaultPolicy::FailFast | FaultPolicy::Degrade => PoisonHandling::Consume,
        };
        let prepared = screen_and_stamp(
            docs,
            &mut front.next_doc_seq,
            &mut front.newest_timestamp,
            enforce_in_order,
            handling,
            batch_index,
            &mut self.quarantine,
            &mut self.supervisor_stats.docs_quarantined,
        )?;
        let log_entry = (policy != FaultPolicy::FailFast).then(|| prepared.clone());

        // Document-parallel Stage 1: contiguous slices across the pool keep
        // arrival order trivially reconstructible on collection.
        let chunk_len = prepared.len().div_ceil(front.workers.len()).max(1);
        let mut pending = Vec::new();
        let mut iter = prepared.into_iter();
        loop {
            let slice: Vec<Document> = iter.by_ref().take(chunk_len).collect();
            if slice.is_empty() {
                break;
            }
            let worker = pending.len();
            let retry = (policy == FaultPolicy::Quarantine).then(|| slice.clone());
            let fault = front_faults.get(worker).copied().flatten();
            let (reply, response) = channel();
            front.workers[worker]
                .sender
                .as_ref()
                .ok_or(CoreError::ShardUnavailable { shard: worker })?
                .send(FrontRequest::Parse {
                    docs: slice,
                    fault,
                    reply,
                })
                .map_err(|_| CoreError::ShardUnavailable { shard: worker })?;
            pending.push((response, retry));
        }
        let mut parsed: Vec<ParsedDoc> = Vec::new();
        let mut parse_work = Duration::ZERO;
        for (worker, (response, retry)) in pending.into_iter().enumerate() {
            let chunk = match response.recv() {
                Ok(chunk) => chunk,
                Err(_) if policy == FaultPolicy::Quarantine => {
                    // The worker died mid-parse. Parsing is snapshot-pure, so
                    // healing is a respawn, a targeted sync and one retry of
                    // the same slice.
                    let t0 = Instant::now();
                    let respawned = spawn_front_worker(worker, retain_documents, streaming)
                        .map_err(|_| CoreError::ShardUnavailable { shard: worker })?;
                    let old = std::mem::replace(&mut front.workers[worker], respawned);
                    drop(old.sender);
                    if let Some(handle) = old.handle {
                        let _ = handle.join();
                    }
                    sync_one_front_worker(front, worker)?;
                    let docs = retry.ok_or(CoreError::ShardUnavailable { shard: worker })?;
                    let (reply, response) = channel();
                    front.workers[worker]
                        .sender
                        .as_ref()
                        .ok_or(CoreError::ShardUnavailable { shard: worker })?
                        .send(FrontRequest::Parse {
                            docs,
                            fault: None,
                            reply,
                        })
                        .map_err(|_| CoreError::ShardUnavailable { shard: worker })?;
                    let chunk = response
                        .recv()
                        .map_err(|_| CoreError::ShardUnavailable { shard: worker })?;
                    self.supervisor_stats.shards_respawned += 1;
                    self.supervisor_stats.timings.recovery += t0.elapsed();
                    chunk
                }
                Err(_) => return Err(CoreError::ShardUnavailable { shard: worker }),
            };
            parse_work += chunk.elapsed;
            parsed.extend(chunk.docs);
        }

        // Route the witness rows: still Stage-1 work (witness construction),
        // done once here instead of once per shard.
        let t_route = Instant::now();
        let mut shard_batches: Vec<WitnessBatch> =
            (0..num_shards).map(|_| WitnessBatch::new()).collect();
        let mut singles = Vec::new();
        let mut doc_meta = Vec::with_capacity(parsed.len());
        let mut retained = Vec::new();
        let mut routed_rows = 0usize;
        for doc in parsed {
            routed_rows += front.router.route_document(
                &doc.doc,
                &doc.bindings,
                &front.index,
                &self.interner,
                &mut shard_batches,
            )?;
            singles.extend(doc.singles);
            doc_meta.push((doc.doc.id(), doc.doc.timestamp().raw()));
            if retain_documents {
                retained.push(doc.doc);
            }
        }
        front.stats.documents_processed += doc_meta.len();
        front.stats.docs_parsed_once += doc_meta.len();
        front.stats.witnesses_routed += routed_rows;
        front.stats.results_emitted += singles.len();
        front.stats.timings.xpath += parse_work + t_route.elapsed();
        Ok(StagedBatch {
            shard_batches,
            doc_meta,
            docs: retained,
            singles,
            log_entry,
            position,
        })
    }

    /// Send one staged batch's routed witness rows to every live shard (the
    /// last live shard takes ownership of the retained documents; the
    /// others get clones) without waiting for the replies. Under
    /// [`FaultPolicy::Degrade`] dead shards are skipped; under
    /// [`FaultPolicy::Quarantine`] each shard's payload is also kept for a
    /// potential heal-retry.
    fn dispatch_routed(&mut self, staged: StagedBatch) -> CoreResult<InFlight> {
        let StagedBatch {
            shard_batches,
            doc_meta,
            docs,
            singles,
            log_entry,
            position,
        } = staged;
        let keep_retry = self.config.fault_policy == FaultPolicy::Quarantine;
        // As in the replicated path: only Degrade routes around a dead
        // shard; every other policy hits the availability error on send.
        let degrade = self.config.fault_policy == FaultPolicy::Degrade;
        let live: Vec<usize> = (0..self.shards.len())
            .filter(|&s| !degrade || self.shards[s].sender.is_some())
            .collect();
        let Some(&last) = live.last() else {
            return Err(CoreError::ShardUnavailable { shard: 0 });
        };
        let mut responses = Vec::with_capacity(live.len());
        let mut retry_routed: Option<Vec<Option<RoutedBatch>>> =
            keep_retry.then(|| self.shards.iter().map(|_| None).collect());
        let mut docs = Some(docs);
        for (shard, batch) in shard_batches.into_iter().enumerate() {
            if !live.contains(&shard) {
                continue;
            }
            let shard_docs = if shard == last {
                // lint:allow the loop takes the documents only on its final iteration
                docs.take().expect("documents are moved out exactly once")
            } else {
                // lint:allow the loop takes the documents only on its final iteration
                docs.as_ref().expect("documents not yet moved").clone()
            };
            let routed = RoutedBatch {
                batch,
                doc_meta: doc_meta.clone(),
                docs: shard_docs,
            };
            if let Some(slots) = retry_routed.as_mut() {
                slots[shard] = Some(routed.clone());
            }
            let fault = self.worker_fault_for_shard(shard);
            let (reply, response) = channel();
            self.send(
                shard,
                Request::Witness {
                    routed: Box::new(routed),
                    fault,
                    reply,
                },
            )?;
            responses.push((shard, response));
        }
        Ok(InFlight {
            responses,
            singles,
            log_entry,
            retry_routed,
            position,
        })
    }

    /// Collect every shard's reply for one batch — even after an error, so
    /// the shards advance in lockstep — and merge the matches (plus the
    /// front's single-block matches) into canonical order. When
    /// `overlapped`, the front just finished Stage 1 of the *next* batch;
    /// a shard that has not replied yet then means the front is stalling on
    /// Stage 2, counted once per batch in `pipeline_stalls`.
    ///
    /// This is also where the supervisor lives: a reply of
    /// [`CoreError::ShardPanicked`] or a disconnected channel marks the
    /// shard dead, and the fault policy decides what happens next —
    /// FailFast propagates the death as this batch's error, Quarantine
    /// heals the shard inline (respawn, replay, retry this batch's
    /// payload), and Degrade retires the shard and keeps serving the rest.
    /// Once collection completes the batch is committed to the replay log
    /// (dispatched ⇒ logged), which is then evicted to its retention bound.
    fn collect_shard_outputs(
        &mut self,
        in_flight: InFlight,
        overlapped: bool,
    ) -> CoreResult<Vec<MatchOutput>> {
        let InFlight {
            responses,
            singles,
            log_entry,
            mut retry_routed,
            position,
        } = in_flight;
        let mut merged = singles;
        let mut first_error: Option<CoreError> = None;
        let mut stalled = false;
        for (shard, response) in responses {
            let received = if overlapped {
                match response.try_recv() {
                    Ok(result) => Ok(result),
                    Err(TryRecvError::Empty) => {
                        stalled = true;
                        response.recv().map_err(|_| ())
                    }
                    Err(TryRecvError::Disconnected) => Err(()),
                }
            } else {
                response.recv().map_err(|_| ())
            };
            // A panic reply or a dead channel both mean the worker's state
            // is gone or suspect: retire it, then apply the fault policy. A
            // typed error from a live worker (e.g. a rejected document in
            // the replicated FailFast path) is this batch's error under
            // every policy — the worker itself is fine.
            let death = match &received {
                Err(()) => true,
                Ok(Err(CoreError::ShardPanicked { .. })) => true,
                Ok(_) => false,
            };
            let outcome = if death {
                self.retire_shard(shard);
                match self.config.fault_policy {
                    FaultPolicy::FailFast => Err(match received {
                        Ok(Err(e)) => e,
                        _ => CoreError::ShardUnavailable { shard },
                    }),
                    FaultPolicy::Degrade => {
                        // Serve what the surviving shards produced; the dead
                        // shard's queries go dark until a manual respawn.
                        continue;
                    }
                    FaultPolicy::Quarantine => {
                        self.heal_shard(shard, &log_entry, &mut retry_routed, position)
                    }
                }
            } else {
                match received {
                    Ok(result) => result,
                    Err(()) => Err(CoreError::ShardUnavailable { shard }),
                }
            };
            match outcome {
                Ok(outputs) => merged.extend(outputs),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if stalled {
            if let Some(front) = self.front.as_mut() {
                front.stats.pipeline_stalls += 1;
            }
        }
        // Dispatched ⇒ logged: the surviving shards absorbed this batch even
        // if one of them reported an error, so a future rebuild must replay
        // it. Eviction keeps the log within the live retention bound.
        if let Some(docs) = log_entry {
            self.replay_log.record(docs);
            let newest = self.stream_position().1;
            self.replay_log.evict(newest, self.retention);
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        sort_matches(&mut merged);
        Ok(merged)
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        if let Some(front) = &mut self.front {
            for worker in &mut front.workers {
                // Dropping the sender closes the channel; the loop exits.
                worker.sender.take();
            }
            for worker in &mut front.workers {
                if let Some(handle) = worker.handle.take() {
                    let _ = handle.join();
                }
            }
        }
        for shard in &mut self.shards {
            shard.sender.take();
        }
        for shard in &mut self.shards {
            if let Some(handle) = shard.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("alive", &self.sender.is_some())
            .finish()
    }
}

/// Deterministic shard assignment: a Fibonacci-style multiplicative hash of
/// the query id. Using the *high* bits keeps the distribution even for the
/// sequential ids the engine assigns (the low bits of `id * odd-constant`
/// would reduce to `id mod n`).
fn shard_of(id: QueryId, num_shards: usize) -> usize {
    ((id.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % num_shards as u64) as usize
}

/// Spawn the worker thread for shard `shard` around `engine`.
/// `initial_globals` seeds the local→global id map — empty at construction,
/// the shard's surviving ids (ascending, matching the rebuilt engine's
/// re-registration order) on respawn.
fn spawn_shard_worker(
    shard: usize,
    engine: MmqjpEngine,
    initial_globals: Vec<QueryId>,
) -> std::io::Result<Shard> {
    let (sender, receiver) = channel();
    let handle = thread::Builder::new()
        .name(format!("mmqjp-shard-{shard}"))
        .spawn(move || shard_worker(engine, receiver, shard, initial_globals))?;
    Ok(Shard {
        sender: Some(sender),
        handle: Some(handle),
    })
}

/// Spawn the front worker thread with index `worker`.
fn spawn_front_worker(
    worker: usize,
    retain_documents: bool,
    streaming: bool,
) -> std::io::Result<FrontWorker> {
    let (sender, receiver) = channel();
    let handle = thread::Builder::new()
        .name(format!("mmqjp-front-{worker}"))
        .spawn(move || front_worker(retain_documents, streaming, receiver))?;
    Ok(FrontWorker {
        sender: Some(sender),
        handle: Some(handle),
    })
}

/// Push the front stage's current subscription snapshot to one worker (a
/// freshly respawned one; its peers already hold it) and await the ack.
fn sync_one_front_worker(front: &FrontStage, worker: usize) -> CoreResult<()> {
    let (reply, response) = channel();
    front.workers[worker]
        .sender
        .as_ref()
        .ok_or(CoreError::ShardUnavailable { shard: worker })?
        .send(FrontRequest::Sync {
            index: Box::new(front.index.clone()),
            requested: front.requested.clone(),
            singles: front.singles.clone(),
            reply,
        })
        .map_err(|_| CoreError::ShardUnavailable { shard: worker })?;
    response
        .recv()
        .map_err(|_| CoreError::ShardUnavailable { shard: worker })
}

/// Map a fault policy to the replicated coordinator's poison handling.
fn poison_handling(policy: FaultPolicy) -> PoisonHandling {
    match policy {
        FaultPolicy::FailFast => PoisonHandling::Consume,
        FaultPolicy::Quarantine => PoisonHandling::Quarantine,
        FaultPolicy::Degrade => PoisonHandling::Atomic,
    }
}

/// Screen and stamp one batch against the stream watermarks, mirroring
/// `MmqjpEngine::process_batch`'s Stage-1 screening exactly: each surviving
/// document consumes the next sequence number as its id (and, when it
/// arrives with timestamp `0`, as its timestamp), and an out-of-order
/// document is handled per `handling` — consume-and-fail, quarantine-and-
/// skip, or fail-the-batch-atomically (watermarks restored).
#[allow(clippy::too_many_arguments)]
fn screen_and_stamp(
    docs: Vec<Document>,
    seq: &mut u64,
    newest: &mut u64,
    enforce_in_order: bool,
    handling: PoisonHandling,
    batch_index: u64,
    quarantine: &mut Vec<QuarantineRecord>,
    docs_quarantined: &mut usize,
) -> CoreResult<Vec<Document>> {
    let entry = (*seq, *newest);
    let mut survivors = Vec::with_capacity(docs.len());
    for (doc_index, mut doc) in docs.into_iter().enumerate() {
        let tentative = *seq + 1;
        let ts = match doc.timestamp().raw() {
            0 => tentative,
            raw => raw,
        };
        if enforce_in_order && ts < *newest {
            let error = CoreError::OutOfOrderDocument {
                timestamp: ts,
                newest: *newest,
            };
            match handling {
                PoisonHandling::Consume => {
                    *seq = tentative;
                    return Err(error);
                }
                PoisonHandling::Atomic => {
                    (*seq, *newest) = entry;
                    return Err(error);
                }
                PoisonHandling::Quarantine => {
                    quarantine.push(QuarantineRecord {
                        batch: batch_index,
                        doc_index,
                        timestamp: ts,
                        error,
                    });
                    *docs_quarantined += 1;
                    continue;
                }
            }
        }
        *seq = tentative;
        doc.set_id(DocId(tentative));
        doc.set_timestamp(Timestamp(ts));
        *newest = (*newest).max(ts);
        survivors.push(doc);
    }
    Ok(survivors)
}

/// Render a caught panic payload for [`CoreError::ShardPanicked`].
fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The worker loop: owns one shard's engine, serves requests until the
/// sending half of the channel is dropped.
///
/// `global_ids` maps the shard-local query index (the order queries were
/// registered on this shard) to the engine-global [`QueryId`], so the matches
/// leaving the shard always speak the global id space.
///
/// Every engine-touching request runs inside `catch_unwind`: a panic is
/// contained, reported to the coordinator as a typed
/// [`CoreError::ShardPanicked`] (instead of a silently dropped channel), and
/// then the worker retires itself — a panicking engine's state is suspect,
/// so the supervisor must respawn the shard rather than keep talking to it.
// The spawned worker thread must own its receiver (`'static` loop).
#[allow(clippy::needless_pass_by_value)]
fn shard_worker(
    engine: MmqjpEngine,
    requests: Receiver<Request>,
    shard: usize,
    initial_globals: Vec<QueryId>,
) {
    let mut local_of: std::collections::HashMap<QueryId, QueryId> = initial_globals
        .iter()
        .enumerate()
        .map(|(local, &global)| (global, QueryId(local as u64)))
        .collect();
    let mut global_ids: Vec<QueryId> = initial_globals;
    let mut engine = engine;
    while let Ok(request) = requests.recv() {
        match request {
            Request::Register {
                query,
                global,
                reply,
            } => {
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    engine.register_query(*query).and_then(|local| {
                        debug_assert_eq!(local.raw() as usize, global_ids.len());
                        global_ids.push(global);
                        local_of.insert(global, local);
                        let runtime = engine.registry().query(local)?;
                        let mut patterns = Vec::new();
                        for r in &runtime.registrations {
                            patterns.push((r.prev_pattern.clone(), r.prev_edges.clone()));
                            patterns.push((r.cur_pattern.clone(), r.cur_edges.clone()));
                        }
                        let single = runtime
                            .single_pattern
                            .as_ref()
                            .map(|p| (p.clone(), runtime.publish.clone(), runtime.select));
                        Ok(Box::new(ShardFootprint { patterns, single }))
                    })
                }));
                match caught {
                    Ok(result) => {
                        let _ = reply.send(result);
                    }
                    Err(payload) => {
                        let _ = reply.send(Err(CoreError::ShardPanicked {
                            shard,
                            payload: panic_payload(payload.as_ref()),
                        }));
                        break;
                    }
                }
            }
            Request::Unregister { global, reply } => {
                let caught = catch_unwind(AssertUnwindSafe(|| match local_of.get(&global) {
                    Some(&local) => engine.unregister_query(local).map(|()| {
                        local_of.remove(&global);
                    }),
                    None => Err(CoreError::UnknownQuery { id: global.raw() }),
                }));
                match caught {
                    Ok(result) => {
                        let _ = reply.send(result);
                    }
                    Err(payload) => {
                        let _ = reply.send(Err(CoreError::ShardPanicked {
                            shard,
                            payload: panic_payload(payload.as_ref()),
                        }));
                        break;
                    }
                }
            }
            Request::Batch { docs, fault, reply } => {
                if matches!(fault, Some(WorkerFault::DropReply)) {
                    // Injected desynchronization: the batch is neither
                    // processed nor answered; the dropped reply surfaces at
                    // the coordinator as a dead channel.
                    drop(reply);
                    continue;
                }
                let panic_requested = matches!(fault, Some(WorkerFault::Panic));
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    if panic_requested {
                        // lint:allow deliberate injected fault, contained by catch_unwind below
                        panic!("injected fault: shard worker panic");
                    }
                    engine.process_batch(docs).map(|mut outputs| {
                        for output in &mut outputs {
                            output.query = global_ids[output.query.raw() as usize];
                        }
                        outputs
                    })
                }));
                match caught {
                    Ok(result) => {
                        let _ = reply.send(result);
                    }
                    Err(payload) => {
                        let _ = reply.send(Err(CoreError::ShardPanicked {
                            shard,
                            payload: panic_payload(payload.as_ref()),
                        }));
                        break;
                    }
                }
            }
            Request::Witness {
                routed,
                fault,
                reply,
            } => {
                if matches!(fault, Some(WorkerFault::DropReply)) {
                    drop(reply);
                    continue;
                }
                let panic_requested = matches!(fault, Some(WorkerFault::Panic));
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    if panic_requested {
                        // lint:allow deliberate injected fault, contained by catch_unwind below
                        panic!("injected fault: shard worker panic");
                    }
                    engine.process_witness_batch(*routed).map(|mut outputs| {
                        for output in &mut outputs {
                            output.query = global_ids[output.query.raw() as usize];
                        }
                        outputs
                    })
                }));
                match caught {
                    Ok(result) => {
                        let _ = reply.send(result);
                    }
                    Err(payload) => {
                        let _ = reply.send(Err(CoreError::ShardPanicked {
                            shard,
                            payload: panic_payload(payload.as_ref()),
                        }));
                        break;
                    }
                }
            }
            Request::Stats { reply } => {
                let _ = reply.send(engine.stats());
            }
            Request::Audit { reply } => {
                let _ = reply.send(engine.audit());
            }
        }
    }
}

/// The front-worker loop: holds a snapshot of the Stage-1 state (master
/// pattern index, requested-edge union, single-block subscriptions) and
/// parses document slices against it. Snapshots are replaced wholesale by
/// `Sync` requests on subscription churn.
// The spawned front worker must own its receiver (`'static` loop).
#[allow(clippy::needless_pass_by_value)]
fn front_worker(retain_documents: bool, streaming: bool, requests: Receiver<FrontRequest>) {
    let mut index = PatternIndex::default();
    let mut requested: HashMap<PatternId, Vec<Edge>> = HashMap::new();
    let mut singles: Vec<FrontSingle> = Vec::new();
    // With the streaming front, single-block patterns are registered into the
    // worker's snapshot index too, so one automaton pass answers join
    // patterns and subscriptions alike. `single_pids[i]` is the index id of
    // `singles[i]` (patterns structurally equal to a join pattern dedupe onto
    // the same id, which is exactly what the shared pass wants).
    let mut single_pids: Vec<PatternId> = Vec::new();
    // Worker-lifetime pass buffer: the shared automaton pass allocates
    // nothing per document once warm.
    let mut pass = SharedPass::default();
    while let Ok(request) = requests.recv() {
        match request {
            FrontRequest::Sync {
                index: new_index,
                requested: new_requested,
                singles: new_singles,
                reply,
            } => {
                index = *new_index;
                requested = new_requested;
                singles = new_singles;
                single_pids.clear();
                if streaming {
                    single_pids.extend(singles.iter().map(|s| index.register(s.pattern.clone())));
                }
                let _ = reply.send(());
            }
            FrontRequest::Parse { docs, fault, reply } => {
                if matches!(fault, Some(WorkerFault::DropReply)) {
                    drop(reply);
                    continue;
                }
                let panic_requested = matches!(fault, Some(WorkerFault::Panic));
                let t0 = Instant::now();
                // Contain panics (injected or organic): the dropped reply
                // surfaces at the coordinator, which respawns and re-syncs
                // this worker — parsing holds no cross-request state, so a
                // snapshot push makes the replacement whole.
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    if panic_requested {
                        // lint:allow deliberate injected fault, contained by catch_unwind below
                        panic!("injected fault: front worker panic");
                    }
                    docs.into_iter()
                        .map(|doc| {
                            let (bindings, single_matches) = if streaming {
                                index.shared_pass_reusing(&doc, &mut pass);
                                (
                                    front_bindings_from_pass(&index, &requested, &doc, &pass),
                                    match_front_singles_from_pass(
                                        &singles,
                                        &single_pids,
                                        &doc,
                                        &pass,
                                        retain_documents,
                                    ),
                                )
                            } else {
                                (
                                    index.evaluate_edge_bindings(&doc, &requested),
                                    match_front_singles(&singles, &doc, retain_documents),
                                )
                            };
                            ParsedDoc {
                                doc,
                                bindings,
                                singles: single_matches,
                            }
                        })
                        .collect()
                }));
                match caught {
                    Ok(parsed) => {
                        let _ = reply.send(ParsedChunk {
                            docs: parsed,
                            elapsed: t0.elapsed(),
                        });
                    }
                    Err(_) => break,
                }
            }
        }
    }
}

/// Derive the routed edge bindings from a shared automaton pass. Mirrors
/// `PatternIndex::evaluate_edge_bindings` over the front's requested-edge
/// union: every join-side pattern has an entry in `requested`, so patterns
/// without one (single-block subscriptions registered only for the shared
/// pass) are skipped rather than falling back to their full edge set.
fn front_bindings_from_pass(
    index: &PatternIndex,
    requested: &HashMap<PatternId, Vec<Edge>>,
    doc: &Document,
    pass: &SharedPass,
) -> Vec<(PatternId, Vec<EdgeBinding>)> {
    let mut out = Vec::new();
    for (pid, pattern) in index.patterns() {
        let Some(edges) = requested.get(&pid) else {
            continue;
        };
        let Some(useful) = pass.useful(pid) else {
            continue;
        };
        if useful.first().map_or(true, Vec::is_empty) {
            continue;
        }
        let matcher = PatternMatcher::new(pattern);
        let bindings = matcher.edge_bindings_from_useful(doc, useful, edges);
        if !bindings.is_empty() {
            out.push((pid, bindings));
        }
    }
    out
}

/// Streaming-front variant of [`match_front_singles`]: the shared pass
/// already ran satisfiability *and* usefulness pruning, so each subscription
/// only replays witness enumeration over its own useful sets.
fn match_front_singles_from_pass(
    singles: &[FrontSingle],
    single_pids: &[PatternId],
    doc: &Document,
    pass: &SharedPass,
    retain_documents: bool,
) -> Vec<MatchOutput> {
    let mut outputs = Vec::new();
    for (s, &pid) in singles.iter().zip(single_pids) {
        let Some(useful) = pass.useful(pid) else {
            continue;
        };
        if useful.first().map_or(true, Vec::is_empty) {
            continue;
        }
        let matcher = PatternMatcher::new(&s.pattern);
        for w in matcher.witnesses_from_useful(doc, useful) {
            push_front_single_output(s, doc, &w, retain_documents, &mut outputs);
        }
    }
    outputs
}

/// Answer single-block subscriptions at the front stage. Mirrors
/// `MmqjpEngine::match_single_block_queries` — same witness enumeration,
/// same output shape — but speaks engine-global query ids directly.
fn match_front_singles(
    singles: &[FrontSingle],
    doc: &Document,
    retain_documents: bool,
) -> Vec<MatchOutput> {
    let mut outputs = Vec::new();
    for s in singles {
        let matcher = PatternMatcher::new(&s.pattern);
        for w in matcher.witnesses(doc) {
            push_front_single_output(s, doc, &w, retain_documents, &mut outputs);
        }
    }
    outputs
}

/// Turn one single-block witness into its front-stage [`MatchOutput`].
fn push_front_single_output(
    s: &FrontSingle,
    doc: &Document,
    w: &mmqjp_xpath::Witness,
    retain_documents: bool,
    outputs: &mut Vec<MatchOutput>,
) {
    let bindings = w
        .bindings()
        .iter()
        .map(|(v, n)| Binding {
            variable: v.clone(),
            doc: doc.id(),
            node: *n,
        })
        .collect();
    let document = if retain_documents && s.select == SelectClause::Star {
        Some(doc.clone())
    } else {
        None
    };
    outputs.push(MatchOutput {
        query: s.global,
        publish: s.publish.clone(),
        left_doc: doc.id(),
        right_doc: doc.id(),
        bindings,
        document,
    });
}

// Compile-time audit that everything crossing (or living on) a shard or
// front-worker thread is `Send`: the engine with its registry / relations /
// view cache, the shared interner, and the request/response payloads of
// both worker kinds.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<MmqjpEngine>();
    assert_send::<Arc<StringInterner>>();
    assert_send::<Request>();
    assert_send::<FrontRequest>();
    assert_send::<ParsedChunk>();
    assert_send::<RoutedBatch>();
    assert_send::<CoreResult<Vec<MatchOutput>>>();
    assert_send::<EngineStats>();
    assert_send::<ShardedEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessingMode;
    use mmqjp_xml::rss;

    const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";
    const Q2: &str = "S//book->x1[.//author->x2][.//category->x7] \
        FOLLOWED BY{x2=x5 AND x7=x8, 200} \
        S//blog->x4[.//author->x5][.//category->x8]";
    const Q3: &str = "S//blog->x4[.//author->x5][.//title->x6] \
        FOLLOWED BY{x5=x5' AND x6=x6', 300} \
        S//blog->x4'[.//author->x5'][.//title->x6']";
    /// A single-block subscription (no join): matched at the front stage in
    /// hybrid mode.
    const Q_SINGLE: &str = "S//book->x1[.//author->x2]";

    fn d1() -> Document {
        rss::book_announcement(
            &["Danny Ayers", "Andrew Watt"],
            "Beginning RSS and Atom Programming",
            &["Scripting & Programming", "Web Site Development"],
            "Wrox",
            "0764579169",
        )
        .with_timestamp(Timestamp(10))
    }

    fn d2() -> Document {
        rss::blog_article(
            "Danny Ayers",
            "http://dannyayers.com/topics/books/rss-book",
            "Beginning RSS and Atom Programming",
            "Scripting & Programming",
            "Just heard ...",
        )
        .with_timestamp(Timestamp(20))
    }

    fn sharded(config: EngineConfig) -> ShardedEngine {
        let mut e = ShardedEngine::new(config);
        e.register_query_text(Q1).unwrap();
        e.register_query_text(Q2).unwrap();
        e.register_query_text(Q3).unwrap();
        e
    }

    #[test]
    fn walkthrough_matches_single_engine_for_every_shard_count() {
        let mut single = MmqjpEngine::new(EngineConfig::mmqjp());
        for q in [Q1, Q2, Q3] {
            single.register_query_text(q).unwrap();
        }
        single.process_document(d1()).unwrap();
        let mut expected = single.process_document(d2()).unwrap();
        sort_matches(&mut expected);
        assert_eq!(expected.len(), 2);

        for shards in [1, 2, 3, 7] {
            let mut e = sharded(EngineConfig::mmqjp().with_num_shards(shards));
            assert_eq!(e.num_shards(), shards);
            assert!(e.process_document(d1()).unwrap().is_empty());
            let outputs = e.process_document(d2()).unwrap();
            assert_eq!(outputs, expected, "shard count {shards} diverges");
        }
    }

    #[test]
    fn hybrid_walkthrough_matches_single_engine_for_every_topology() {
        let mut single = MmqjpEngine::new(EngineConfig::mmqjp());
        for q in [Q1, Q2, Q3, Q_SINGLE] {
            single.register_query_text(q).unwrap();
        }
        let mut expected_d1 = single.process_document(d1()).unwrap();
        sort_matches(&mut expected_d1);
        let mut expected_d2 = single.process_document(d2()).unwrap();
        sort_matches(&mut expected_d2);
        // Q_SINGLE matches the book announcement on arrival.
        assert!(!expected_d1.is_empty());
        assert_eq!(expected_d2.len(), 2);

        for front_pool in [1, 2, 4] {
            for shards in [1, 2, 3, 7] {
                let mut e = ShardedEngine::new(
                    EngineConfig::mmqjp()
                        .with_num_shards(shards)
                        .with_front_pool(front_pool),
                );
                for q in [Q1, Q2, Q3, Q_SINGLE] {
                    e.register_query_text(q).unwrap();
                }
                assert_eq!(e.front_pool(), front_pool);
                let out1 = e.process_document(d1()).unwrap();
                assert_eq!(out1, expected_d1, "{front_pool} front / {shards} shards");
                let out2 = e.process_document(d2()).unwrap();
                assert_eq!(out2, expected_d2, "{front_pool} front / {shards} shards");
            }
        }
    }

    #[test]
    fn hybrid_stats_count_documents_once_and_sum_exactly() {
        let mut e = sharded(EngineConfig::mmqjp().with_num_shards(3).with_front_pool(2));
        e.process_document(d1()).unwrap();
        e.process_document(d2()).unwrap();
        let per_shard = e.shard_stats().unwrap();
        let front = e.front_stats();
        let total = e.stats().unwrap();
        // Exact decomposition: aggregate == shard sum + front stats.
        let shard_sum: EngineStats = per_shard.iter().copied().sum();
        assert_eq!(total, shard_sum + front);
        // Documents are parsed and counted exactly once, at the front.
        assert_eq!(front.documents_processed, 2);
        assert_eq!(front.docs_parsed_once, 2);
        assert_eq!(total.documents_processed, 2);
        assert!(per_shard.iter().all(|s| s.documents_processed == 0));
        // Witness rows were routed (both documents carry witnesses).
        assert!(front.witnesses_routed > 0);
        assert_eq!(total.witnesses_routed, front.witnesses_routed);
        // Shards did no Stage-1 work; the front did all of it.
        assert!(per_shard.iter().all(|s| s.timings.xpath == Duration::ZERO));
        assert!(front.timings.xpath > Duration::ZERO);
        // Join results still come from the shards.
        assert_eq!(total.results_emitted, 2);
    }

    #[test]
    fn hybrid_unregister_releases_front_subscriptions() {
        let mut e = sharded(EngineConfig::mmqjp().with_num_shards(2).with_front_pool(1));
        assert!(!e.witness_router().unwrap().is_empty());
        e.process_document(d1()).unwrap();
        e.unregister_query(QueryId(0)).unwrap();
        let out = e.process_document(d2()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].query, QueryId(1));
        e.unregister_query(QueryId(1)).unwrap();
        e.unregister_query(QueryId(2)).unwrap();
        // The routing table empties with the last subscription.
        assert!(e.witness_router().unwrap().is_empty());
        assert!(e
            .process_document(d2().with_timestamp(Timestamp(30)))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn hybrid_pipelined_batches_equal_batchwise_processing() {
        let docs: Vec<Document> = (0..6)
            .map(|i| {
                let doc = if i % 2 == 0 { d1() } else { d2() };
                doc.with_timestamp(Timestamp(10 + i * 10))
            })
            .collect();
        let batches: Vec<Vec<Document>> = docs.chunks(1).map(|c| c.to_vec()).collect();

        // Reference: batch-at-a-time on the unpipelined entry point.
        let mut reference = sharded(EngineConfig::mmqjp().with_num_shards(2).with_front_pool(2));
        let expected: Vec<Vec<MatchOutput>> = batches
            .clone()
            .into_iter()
            .map(|b| reference.process_batch(b).unwrap())
            .collect();

        let mut pipelined = sharded(EngineConfig::mmqjp().with_num_shards(2).with_front_pool(2));
        let results = pipelined.process_batches(batches).unwrap();
        assert_eq!(results, expected);
        assert_eq!(
            pipelined.stats().unwrap().results_emitted,
            expected.iter().map(Vec::len).sum::<usize>()
        );
    }

    #[test]
    fn witness_router_routes_only_to_subscribers() {
        use mmqjp_xpath::parse_pattern;
        let mut index = PatternIndex::default();
        let mut p1 = parse_pattern("S//book->b[.//author->a]").unwrap();
        p1.assign_canonical_variables();
        let mut p2 = parse_pattern("S//book->b[.//title->t]").unwrap();
        p2.assign_canonical_variables();
        let edges1: Vec<Edge> = p1.edges();
        let edges2: Vec<Edge> = p2.edges();
        let pid1 = index.register(p1.clone());
        let pid2 = index.register(p2.clone());

        let mut router = WitnessRouter::new();
        router.subscribe(0, pid1, &edges1);
        router.subscribe(2, pid2, &edges2);
        assert_eq!(router.subscribers(pid1), vec![0]);
        assert_eq!(router.subscribers(pid2), vec![2]);

        let interner = Arc::new(StringInterner::new());
        let doc = d1().with_id(DocId(1));
        let mut requested: HashMap<PatternId, Vec<Edge>> = HashMap::new();
        requested.insert(pid1, edges1.clone());
        requested.insert(pid2, edges2.clone());
        let bindings = index.evaluate_edge_bindings(&doc, &requested);
        assert!(!bindings.is_empty());

        let mut batches = vec![
            WitnessBatch::new(),
            WitnessBatch::new(),
            WitnessBatch::new(),
        ];
        let routed = router
            .route_document(&doc, &bindings, &index, &interner, &mut batches)
            .unwrap();
        assert!(routed > 0);
        // Shard 1 subscribed to nothing: ledger row only.
        assert_eq!(batches[1].num_witness_rows(), 0);
        assert_eq!(batches[1].rdoc_ts_w.len(), 1);
        // Shards 0 and 2 got exactly their subscribed patterns' rows.
        assert!(batches[0].num_witness_rows() > 0);
        assert!(batches[2].num_witness_rows() > 0);
        assert_eq!(
            routed,
            batches[0].num_witness_rows() + batches[2].num_witness_rows()
        );
        // Unsubscribing shard 0 drops its pattern from the table.
        router.unsubscribe(0, pid1, &edges1).unwrap();
        assert_eq!(router.subscribers(pid1), Vec::<usize>::new());
        assert!(!router.is_empty());
        router.unsubscribe(2, pid2, &edges2).unwrap();
        assert!(router.is_empty());
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let e = ShardedEngine::new(EngineConfig::mmqjp().with_num_shards(0));
        assert_eq!(e.num_shards(), 1);
        assert_eq!(e.front_pool(), 0);
        assert!(e.witness_router().is_none());
    }

    #[test]
    fn queries_are_distributed_and_ids_are_global() {
        let mut e = ShardedEngine::new(EngineConfig::mmqjp().with_num_shards(4));
        let mut expected = vec![0usize; 4];
        for i in 0..20 {
            let id = e.register_query_text(Q1).unwrap();
            assert_eq!(id, QueryId(i));
            expected[e.shard_of(id)] += 1;
        }
        assert_eq!(e.num_queries(), 20);
        assert_eq!(e.queries_per_shard(), expected.as_slice());
        assert_eq!(e.queries_per_shard().iter().sum::<usize>(), 20);
        // With 20 sequential ids the multiplicative hash touches > 1 shard.
        assert!(expected.iter().filter(|&&c| c > 0).count() > 1);
    }

    #[test]
    fn failed_registration_consumes_no_id() {
        let mut e = ShardedEngine::new(EngineConfig::mmqjp().with_num_shards(3).with_front_pool(1));
        assert!(e.register_query_text("not a query at all ///").is_err());
        assert_eq!(e.num_queries(), 0);
        assert!(e.witness_router().unwrap().is_empty());
        let id = e.register_query_text(Q1).unwrap();
        assert_eq!(id, QueryId(0));
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let mut e = sharded(EngineConfig::mmqjp_view_mat().with_num_shards(2));
        e.process_document(d1()).unwrap();
        e.process_document(d2()).unwrap();
        // A repeated blog article re-joins under already-cached string
        // values, so the view caches register hits as well as misses.
        e.process_document(d2().with_timestamp(Timestamp(30)))
            .unwrap();
        let per_shard = e.shard_stats().unwrap();
        assert_eq!(per_shard.len(), 2);
        let total = e.stats().unwrap();
        assert_eq!(total, per_shard.iter().copied().sum());
        // The replicated topology has no front stage.
        assert_eq!(e.front_stats(), EngineStats::default());
        assert_eq!(total.queries_registered, 3);
        // Every shard sees every document.
        assert_eq!(total.documents_processed, 3 * e.num_shards());
        // Q1/Q2 match (book, blog) for each of the two blog timestamps; Q3
        // (blog FOLLOWED BY blog) matches the repeated article pair.
        assert_eq!(total.results_emitted, 5);
        // View-cache counters aggregate across shards: the merged stats are
        // the exact field-wise sums of nonzero per-shard counters.
        assert!(total.view_cache_misses > 0, "caches were exercised");
        assert!(total.view_cache_hits > 0, "repeat strvals hit the caches");
        assert_eq!(
            total.view_cache_hits,
            per_shard.iter().map(|s| s.view_cache_hits).sum::<usize>()
        );
        assert_eq!(
            total.view_cache_misses,
            per_shard.iter().map(|s| s.view_cache_misses).sum::<usize>()
        );
        assert_eq!(
            total.view_cache_evictions,
            per_shard
                .iter()
                .map(|s| s.view_cache_evictions)
                .sum::<usize>()
        );
        assert_eq!(e.config().mode, ProcessingMode::MmqjpViewMat);
        assert!(!e.interner().is_empty());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut e = sharded(EngineConfig::mmqjp().with_num_shards(2));
        assert!(e.process_batch(Vec::new()).unwrap().is_empty());
        assert_eq!(e.stats().unwrap().documents_processed, 0);
        // Hybrid: same, including via the pipelined entry point.
        let mut h = sharded(EngineConfig::mmqjp().with_num_shards(2).with_front_pool(1));
        assert!(h.process_batch(Vec::new()).unwrap().is_empty());
        let results = h.process_batches(vec![Vec::new(), Vec::new()]).unwrap();
        assert_eq!(results, vec![Vec::new(), Vec::new()]);
        assert_eq!(h.stats().unwrap().documents_processed, 0);
    }

    #[test]
    fn out_of_order_document_errors_like_the_single_engine() {
        for front_pool in [0, 2] {
            let mut config = EngineConfig::mmqjp()
                .with_num_shards(3)
                .with_front_pool(front_pool);
            config.enforce_in_order = true;
            let mut e = sharded(config);
            e.process_document(d1().with_timestamp(Timestamp(100)))
                .unwrap();
            let err = e
                .process_document(d2().with_timestamp(Timestamp(50)))
                .unwrap_err();
            assert!(matches!(err, CoreError::OutOfOrderDocument { .. }));
            // The engine keeps working after the rejected document.
            let out = e
                .process_document(d2().with_timestamp(Timestamp(120)))
                .unwrap();
            assert!(!out.is_empty(), "front pool {front_pool}");
        }
    }

    #[test]
    fn unregister_routes_to_the_owning_shard() {
        for shards in [1, 2, 4] {
            let mut e = sharded(EngineConfig::mmqjp().with_num_shards(shards));
            assert_eq!(e.num_queries(), 3);
            e.process_document(d1()).unwrap();
            // Q1 departs; Q2 keeps matching d2.
            e.unregister_query(QueryId(0)).unwrap();
            assert_eq!(e.num_queries(), 2);
            assert_eq!(e.total_queries_registered(), 3);
            assert_eq!(e.queries_per_shard().iter().sum::<usize>(), 2);
            let out = e.process_document(d2()).unwrap();
            assert_eq!(out.len(), 1, "{shards} shards");
            assert_eq!(out[0].query, QueryId(1));
            let stats = e.stats().unwrap();
            assert_eq!(stats.queries_registered, 2);
            assert_eq!(stats.queries_unregistered, 1);
            // Double unregister and unknown ids error without poisoning the
            // engine.
            assert!(matches!(
                e.unregister_query(QueryId(0)),
                Err(CoreError::UnknownQuery { .. })
            ));
            assert!(matches!(
                e.unregister_query(QueryId(99)),
                Err(CoreError::UnknownQuery { .. })
            ));
            assert_eq!(e.num_queries(), 2);
            // Freed global ids are never reused.
            let id = e.register_query_text(Q1).unwrap();
            assert_eq!(id, QueryId(3));
        }
    }

    #[test]
    fn more_shards_than_queries_leaves_some_shards_empty() {
        let mut e = ShardedEngine::new(EngineConfig::mmqjp().with_num_shards(7));
        e.register_query_text(Q1).unwrap();
        assert!(e.queries_per_shard().contains(&0));
        e.process_document(d1()).unwrap();
        let out = e.process_document(d2()).unwrap();
        assert_eq!(out.len(), 1);
    }
}
