//! Multi-core processing through query-population sharding.
//!
//! The paper's Join Processor is a single-threaded component; its evaluation
//! is inherently shareable across queries but not, by itself, across cores.
//! [`ShardedEngine`] scales it out the standard pub/sub way: the *query
//! population* is hash-partitioned across `N` independent [`MmqjpEngine`]
//! shards and the *document stream* is replicated to all of them. Each shard
//! runs on a long-lived worker thread, owns its own registry, join state and
//! view cache, and evaluates its query subset in the configured
//! [`ProcessingMode`](crate::ProcessingMode) — a shard is just a smaller
//! engine, so sharding composes with Sequential, MMQJP and MMQJP+VM alike.
//!
//! ```text
//!                         ┌──────────────────────────────┐
//!   documents ───────────▶│ fan-out (clone per shard)    │
//!                         └──┬───────────┬───────────┬───┘
//!                            ▼           ▼           ▼
//!                       ┌─────────┐ ┌─────────┐ ┌─────────┐
//!   queries ──hash(qid)▶│ shard 0 │ │ shard 1 │ │ shard 2 │  worker threads,
//!                       │ MMQJP   │ │ MMQJP   │ │ MMQJP   │  one MmqjpEngine
//!                       └────┬────┘ └────┬────┘ └────┬────┘  each
//!                            ▼           ▼           ▼
//!                         ┌──────────────────────────────┐
//!   matches ◀─────────────│ deterministic canonical merge│
//!                         └──────────────────────────────┘
//! ```
//!
//! # Determinism
//!
//! Every shard sees the full document stream in arrival order, so the shards
//! assign identical document ids and timestamps and each query produces
//! exactly the matches it would produce in a single engine. The merged batch
//! output is sorted into the canonical
//! `(query, left_doc, right_doc, bindings)` order (see
//! [`sort_matches`](crate::sort_matches)), which makes the result
//! independent of shard count and thread interleaving: a `ShardedEngine` with
//! any `N` returns exactly a canonically-sorted single-engine batch.
//!
//! # Thread-safety audit
//!
//! The engine state is `Send` by construction: the registry, witness
//! relations and view cache own their data outright (no `Rc`, no
//! thread-bound interior mutability), and the one shared component — the
//! [`StringInterner`] — is behind `Arc` + `RwLock` and is shared by all
//! shards so symbols stay comparable engine-wide. The `assert_send`
//! bindings at the bottom of this module enforce this at compile time.

use crate::config::EngineConfig;
use crate::engine::MmqjpEngine;
use crate::error::{CoreError, CoreResult};
use crate::output::{sort_matches, MatchOutput};
use crate::stats::EngineStats;
use mmqjp_relational::StringInterner;
use mmqjp_xml::Document;
use mmqjp_xscl::{QueryId, XsclQuery};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// A request sent to a shard worker thread. Every request carries a reply
/// channel; the worker answers each request exactly once, in order.
enum Request {
    /// Register a query under the given engine-global id.
    Register {
        query: Box<XsclQuery>,
        global: QueryId,
        reply: Sender<CoreResult<()>>,
    },
    /// Unregister the query registered under the given engine-global id.
    Unregister {
        global: QueryId,
        reply: Sender<CoreResult<()>>,
    },
    /// Process a document batch and return the shard's matches, with query
    /// ids already translated back to engine-global ids.
    Batch {
        docs: Vec<Document>,
        reply: Sender<CoreResult<Vec<MatchOutput>>>,
    },
    /// Snapshot the shard's statistics.
    Stats { reply: Sender<EngineStats> },
}

/// One shard: the channel into its worker thread and the join handle.
struct Shard {
    sender: Option<Sender<Request>>,
    handle: Option<JoinHandle<()>>,
}

/// A multi-core MMQJP engine: `N` independent [`MmqjpEngine`] shards over a
/// hash-partitioned query population, fed by replicating every document batch
/// and merged into a deterministic, canonically-ordered match stream.
///
/// The API mirrors [`MmqjpEngine`]: register queries, then feed documents or
/// batches. [`EngineConfig::num_shards`] selects the shard count; every other
/// config knob applies to each shard individually.
///
/// ```
/// use mmqjp_core::{EngineConfig, ShardedEngine};
/// use mmqjp_xml::rss;
///
/// let mut engine = ShardedEngine::new(EngineConfig::default().with_num_shards(4));
/// engine.register_query_text(
///     "S//book->x1[.//author->x2][.//title->x3] \
///      FOLLOWED BY{x2=x5 AND x3=x6, 100} \
///      S//blog->x4[.//author->x5][.//title->x6]",
/// ).unwrap();
///
/// let d1 = rss::book_announcement(&["Danny Ayers"], "RSS", &[], "Wrox", "0764579169");
/// let d2 = rss::blog_article("Danny Ayers", "http://...", "RSS", "Books", "...");
/// assert!(engine.process_document(d1).unwrap().is_empty());
/// assert_eq!(engine.process_document(d2).unwrap().len(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    config: EngineConfig,
    interner: Arc<StringInterner>,
    shards: Vec<Shard>,
    queries_per_shard: Vec<usize>,
    next_query: u64,
    live_queries: usize,
}

impl ShardedEngine {
    /// Create a sharded engine with [`EngineConfig::num_shards`] shards
    /// (a count of `0` is treated as `1`), each running the configured
    /// processing mode on its own worker thread.
    pub fn new(config: EngineConfig) -> Self {
        let num_shards = config.num_shards.max(1);
        let interner = Arc::new(StringInterner::new());
        let shards = (0..num_shards)
            .map(|i| {
                let engine = MmqjpEngine::with_interner(config.clone(), Arc::clone(&interner));
                let (sender, receiver) = channel();
                let handle = thread::Builder::new()
                    .name(format!("mmqjp-shard-{i}"))
                    .spawn(move || shard_worker(engine, receiver))
                    .expect("spawning a shard worker thread succeeds");
                Shard {
                    sender: Some(sender),
                    handle: Some(handle),
                }
            })
            .collect();
        ShardedEngine {
            config,
            interner,
            shards,
            queries_per_shard: vec![0; num_shards],
            next_query: 0,
            live_queries: 0,
        }
    }

    /// The engine configuration (shared by every shard).
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of live registered queries across all shards.
    pub fn num_queries(&self) -> usize {
        self.live_queries
    }

    /// Total number of query ids ever assigned (freed ids are tombstoned,
    /// never reused).
    pub fn total_queries_registered(&self) -> usize {
        self.next_query as usize
    }

    /// Number of live queries assigned to each shard, by shard index.
    pub fn queries_per_shard(&self) -> &[usize] {
        &self.queries_per_shard
    }

    /// The string interner shared by all shards.
    pub fn interner(&self) -> &Arc<StringInterner> {
        &self.interner
    }

    /// The shard a query id is assigned to.
    pub fn shard_of(&self, id: QueryId) -> usize {
        shard_of(id, self.shards.len())
    }

    /// Register a query from its textual XSCL form. Returns the query id.
    pub fn register_query_text(&mut self, text: &str) -> CoreResult<QueryId> {
        let query = mmqjp_xscl::parse_query(text)?;
        self.register_query(query)
    }

    /// Register a parsed query on the shard its id hashes to. Returns the
    /// engine-global query id, which matches the id a single [`MmqjpEngine`]
    /// registering the same queries in the same order would assign.
    pub fn register_query(&mut self, query: XsclQuery) -> CoreResult<QueryId> {
        let global = QueryId(self.next_query);
        let shard = shard_of(global, self.shards.len());
        let (reply, response) = channel();
        self.send(
            shard,
            Request::Register {
                query: Box::new(query),
                global,
                reply,
            },
        )?;
        response
            .recv()
            .map_err(|_| CoreError::ShardUnavailable { shard })??;
        // Failed registrations consume no id, matching the single engine.
        self.next_query += 1;
        self.live_queries += 1;
        self.queries_per_shard[shard] += 1;
        Ok(global)
    }

    /// Unregister a query on the shard that owns it. Mirrors
    /// [`MmqjpEngine::unregister_query`]: the owning shard incrementally
    /// releases the query's footprint, and the freed id is never reused.
    /// Errors with [`CoreError::UnknownQuery`] for ids never assigned or
    /// already unregistered, and [`CoreError::ShardUnavailable`] if the
    /// owning shard's worker is gone.
    pub fn unregister_query(&mut self, id: QueryId) -> CoreResult<()> {
        let shard = shard_of(id, self.shards.len());
        let (reply, response) = channel();
        self.send(shard, Request::Unregister { global: id, reply })?;
        response
            .recv()
            .map_err(|_| CoreError::ShardUnavailable { shard })??;
        self.live_queries -= 1;
        self.queries_per_shard[shard] -= 1;
        Ok(())
    }

    /// Process one document, returning its matches in canonical order.
    pub fn process_document(&mut self, doc: Document) -> CoreResult<Vec<MatchOutput>> {
        self.process_batch(vec![doc])
    }

    /// Process a batch of documents in arrival order.
    ///
    /// The batch is fanned out to every shard (each shard maintains the full
    /// join state for its query subset), the per-shard matches are collected,
    /// and the merged result is returned in the canonical
    /// `(query, left_doc, right_doc, bindings)` order. The batched-evaluation
    /// trade-off of [`MmqjpEngine::process_batch`] applies unchanged.
    pub fn process_batch(&mut self, docs: Vec<Document>) -> CoreResult<Vec<MatchOutput>> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        // Fan the batch out to all shards before collecting any reply so the
        // shards process it concurrently. The last shard takes ownership of
        // the batch; the others get clones.
        let mut responses = Vec::with_capacity(self.shards.len());
        let mut docs = Some(docs);
        for shard in 0..self.shards.len() {
            let batch = if shard + 1 == self.shards.len() {
                docs.take().expect("batch is moved out exactly once")
            } else {
                docs.as_ref().expect("batch not yet moved").clone()
            };
            let (reply, response) = channel();
            self.send(shard, Request::Batch { docs: batch, reply })?;
            responses.push(response);
        }
        // Collect every reply even after an error: the shards advance in
        // lockstep, and draining keeps them synchronized for the next batch.
        let mut merged = Vec::new();
        let mut first_error = None;
        for (shard, response) in responses.into_iter().enumerate() {
            match response.recv() {
                Ok(Ok(outputs)) => merged.extend(outputs),
                Ok(Err(e)) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Err(_) => {
                    if first_error.is_none() {
                        first_error = Some(CoreError::ShardUnavailable { shard });
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        sort_matches(&mut merged);
        Ok(merged)
    }

    /// Aggregate statistics: the field-wise sum of every shard's
    /// [`EngineStats`] (see the `Sum` impl on [`EngineStats`] for the exact
    /// semantics — notably `documents_processed` counts per-shard work, so it
    /// is `num_shards ×` the number of ingested documents). Errors with
    /// [`CoreError::ShardUnavailable`] if a shard worker is gone, rather than
    /// silently under-reporting.
    pub fn stats(&self) -> CoreResult<EngineStats> {
        Ok(self.shard_stats()?.into_iter().sum())
    }

    /// Per-shard statistics snapshots, by shard index.
    pub fn shard_stats(&self) -> CoreResult<Vec<EngineStats>> {
        let mut responses = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            let (reply, response) = channel();
            self.send(shard, Request::Stats { reply })?;
            responses.push(response);
        }
        responses
            .into_iter()
            .enumerate()
            .map(|(shard, response)| {
                response
                    .recv()
                    .map_err(|_| CoreError::ShardUnavailable { shard })
            })
            .collect()
    }

    fn send(&self, shard: usize, request: Request) -> CoreResult<()> {
        self.shards[shard]
            .sender
            .as_ref()
            .ok_or(CoreError::ShardUnavailable { shard })?
            .send(request)
            .map_err(|_| CoreError::ShardUnavailable { shard })
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            // Dropping the sender closes the channel; the worker loop exits.
            shard.sender.take();
        }
        for shard in &mut self.shards {
            if let Some(handle) = shard.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("alive", &self.sender.is_some())
            .finish()
    }
}

/// Deterministic shard assignment: a Fibonacci-style multiplicative hash of
/// the query id. Using the *high* bits keeps the distribution even for the
/// sequential ids the engine assigns (the low bits of `id * odd-constant`
/// would reduce to `id mod n`).
fn shard_of(id: QueryId, num_shards: usize) -> usize {
    ((id.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % num_shards as u64) as usize
}

/// The worker loop: owns one shard's engine, serves requests until the
/// sending half of the channel is dropped.
///
/// `global_ids` maps the shard-local query index (the order queries were
/// registered on this shard) to the engine-global [`QueryId`], so the matches
/// leaving the shard always speak the global id space.
fn shard_worker(mut engine: MmqjpEngine, requests: Receiver<Request>) {
    let mut global_ids: Vec<QueryId> = Vec::new();
    let mut local_of: std::collections::HashMap<QueryId, QueryId> =
        std::collections::HashMap::new();
    while let Ok(request) = requests.recv() {
        match request {
            Request::Register {
                query,
                global,
                reply,
            } => {
                let result = engine.register_query(*query).map(|local| {
                    debug_assert_eq!(local.raw() as usize, global_ids.len());
                    global_ids.push(global);
                    local_of.insert(global, local);
                });
                let _ = reply.send(result);
            }
            Request::Unregister { global, reply } => {
                let result = match local_of.get(&global) {
                    Some(&local) => engine.unregister_query(local).map(|()| {
                        local_of.remove(&global);
                    }),
                    None => Err(CoreError::UnknownQuery { id: global.raw() }),
                };
                let _ = reply.send(result);
            }
            Request::Batch { docs, reply } => {
                let result = engine.process_batch(docs).map(|mut outputs| {
                    for output in &mut outputs {
                        output.query = global_ids[output.query.raw() as usize];
                    }
                    outputs
                });
                let _ = reply.send(result);
            }
            Request::Stats { reply } => {
                let _ = reply.send(engine.stats());
            }
        }
    }
}

// Compile-time audit that everything crossing (or living on) a shard thread
// is `Send`: the engine with its registry / relations / view cache, the
// shared interner, and the request/response payloads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<MmqjpEngine>();
    assert_send::<Arc<StringInterner>>();
    assert_send::<Request>();
    assert_send::<CoreResult<Vec<MatchOutput>>>();
    assert_send::<EngineStats>();
    assert_send::<ShardedEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessingMode;
    use mmqjp_xml::{rss, Timestamp};

    const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";
    const Q2: &str = "S//book->x1[.//author->x2][.//category->x7] \
        FOLLOWED BY{x2=x5 AND x7=x8, 200} \
        S//blog->x4[.//author->x5][.//category->x8]";
    const Q3: &str = "S//blog->x4[.//author->x5][.//title->x6] \
        FOLLOWED BY{x5=x5' AND x6=x6', 300} \
        S//blog->x4'[.//author->x5'][.//title->x6']";

    fn d1() -> Document {
        rss::book_announcement(
            &["Danny Ayers", "Andrew Watt"],
            "Beginning RSS and Atom Programming",
            &["Scripting & Programming", "Web Site Development"],
            "Wrox",
            "0764579169",
        )
        .with_timestamp(Timestamp(10))
    }

    fn d2() -> Document {
        rss::blog_article(
            "Danny Ayers",
            "http://dannyayers.com/topics/books/rss-book",
            "Beginning RSS and Atom Programming",
            "Scripting & Programming",
            "Just heard ...",
        )
        .with_timestamp(Timestamp(20))
    }

    fn sharded(config: EngineConfig) -> ShardedEngine {
        let mut e = ShardedEngine::new(config);
        e.register_query_text(Q1).unwrap();
        e.register_query_text(Q2).unwrap();
        e.register_query_text(Q3).unwrap();
        e
    }

    #[test]
    fn walkthrough_matches_single_engine_for_every_shard_count() {
        let mut single = MmqjpEngine::new(EngineConfig::mmqjp());
        for q in [Q1, Q2, Q3] {
            single.register_query_text(q).unwrap();
        }
        single.process_document(d1()).unwrap();
        let mut expected = single.process_document(d2()).unwrap();
        sort_matches(&mut expected);
        assert_eq!(expected.len(), 2);

        for shards in [1, 2, 3, 7] {
            let mut e = sharded(EngineConfig::mmqjp().with_num_shards(shards));
            assert_eq!(e.num_shards(), shards);
            assert!(e.process_document(d1()).unwrap().is_empty());
            let outputs = e.process_document(d2()).unwrap();
            assert_eq!(outputs, expected, "shard count {shards} diverges");
        }
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let e = ShardedEngine::new(EngineConfig::mmqjp().with_num_shards(0));
        assert_eq!(e.num_shards(), 1);
    }

    #[test]
    fn queries_are_distributed_and_ids_are_global() {
        let mut e = ShardedEngine::new(EngineConfig::mmqjp().with_num_shards(4));
        let mut expected = vec![0usize; 4];
        for i in 0..20 {
            let id = e.register_query_text(Q1).unwrap();
            assert_eq!(id, QueryId(i));
            expected[e.shard_of(id)] += 1;
        }
        assert_eq!(e.num_queries(), 20);
        assert_eq!(e.queries_per_shard(), expected.as_slice());
        assert_eq!(e.queries_per_shard().iter().sum::<usize>(), 20);
        // With 20 sequential ids the multiplicative hash touches > 1 shard.
        assert!(expected.iter().filter(|&&c| c > 0).count() > 1);
    }

    #[test]
    fn failed_registration_consumes_no_id() {
        let mut e = ShardedEngine::new(EngineConfig::mmqjp().with_num_shards(3));
        assert!(e.register_query_text("not a query at all ///").is_err());
        assert_eq!(e.num_queries(), 0);
        let id = e.register_query_text(Q1).unwrap();
        assert_eq!(id, QueryId(0));
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let mut e = sharded(EngineConfig::mmqjp_view_mat().with_num_shards(2));
        e.process_document(d1()).unwrap();
        e.process_document(d2()).unwrap();
        // A repeated blog article re-joins under already-cached string
        // values, so the view caches register hits as well as misses.
        e.process_document(d2().with_timestamp(Timestamp(30)))
            .unwrap();
        let per_shard = e.shard_stats().unwrap();
        assert_eq!(per_shard.len(), 2);
        let total = e.stats().unwrap();
        assert_eq!(total, per_shard.iter().copied().sum());
        assert_eq!(total.queries_registered, 3);
        // Every shard sees every document.
        assert_eq!(total.documents_processed, 3 * e.num_shards());
        // Q1/Q2 match (book, blog) for each of the two blog timestamps; Q3
        // (blog FOLLOWED BY blog) matches the repeated article pair.
        assert_eq!(total.results_emitted, 5);
        // View-cache counters aggregate across shards: the merged stats are
        // the exact field-wise sums of nonzero per-shard counters.
        assert!(total.view_cache_misses > 0, "caches were exercised");
        assert!(total.view_cache_hits > 0, "repeat strvals hit the caches");
        assert_eq!(
            total.view_cache_hits,
            per_shard.iter().map(|s| s.view_cache_hits).sum::<usize>()
        );
        assert_eq!(
            total.view_cache_misses,
            per_shard.iter().map(|s| s.view_cache_misses).sum::<usize>()
        );
        assert_eq!(
            total.view_cache_evictions,
            per_shard
                .iter()
                .map(|s| s.view_cache_evictions)
                .sum::<usize>()
        );
        assert_eq!(e.config().mode, ProcessingMode::MmqjpViewMat);
        assert!(!e.interner().is_empty());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut e = sharded(EngineConfig::mmqjp().with_num_shards(2));
        assert!(e.process_batch(Vec::new()).unwrap().is_empty());
        assert_eq!(e.stats().unwrap().documents_processed, 0);
    }

    #[test]
    fn out_of_order_document_errors_like_the_single_engine() {
        let mut config = EngineConfig::mmqjp().with_num_shards(3);
        config.enforce_in_order = true;
        let mut e = sharded(config);
        e.process_document(d1().with_timestamp(Timestamp(100)))
            .unwrap();
        let err = e
            .process_document(d2().with_timestamp(Timestamp(50)))
            .unwrap_err();
        assert!(matches!(err, CoreError::OutOfOrderDocument { .. }));
        // The engine keeps working after the rejected document.
        let out = e
            .process_document(d2().with_timestamp(Timestamp(120)))
            .unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn unregister_routes_to_the_owning_shard() {
        for shards in [1, 2, 4] {
            let mut e = sharded(EngineConfig::mmqjp().with_num_shards(shards));
            assert_eq!(e.num_queries(), 3);
            e.process_document(d1()).unwrap();
            // Q1 departs; Q2 keeps matching d2.
            e.unregister_query(QueryId(0)).unwrap();
            assert_eq!(e.num_queries(), 2);
            assert_eq!(e.total_queries_registered(), 3);
            assert_eq!(e.queries_per_shard().iter().sum::<usize>(), 2);
            let out = e.process_document(d2()).unwrap();
            assert_eq!(out.len(), 1, "{shards} shards");
            assert_eq!(out[0].query, QueryId(1));
            let stats = e.stats().unwrap();
            assert_eq!(stats.queries_registered, 2);
            assert_eq!(stats.queries_unregistered, 1);
            // Double unregister and unknown ids error without poisoning the
            // engine.
            assert!(matches!(
                e.unregister_query(QueryId(0)),
                Err(CoreError::UnknownQuery { .. })
            ));
            assert!(matches!(
                e.unregister_query(QueryId(99)),
                Err(CoreError::UnknownQuery { .. })
            ));
            assert_eq!(e.num_queries(), 2);
            // Freed global ids are never reused.
            let id = e.register_query_text(Q1).unwrap();
            assert_eq!(id, QueryId(3));
        }
    }

    #[test]
    fn more_shards_than_queries_leaves_some_shards_empty() {
        let mut e = ShardedEngine::new(EngineConfig::mmqjp().with_num_shards(7));
        e.register_query_text(Q1).unwrap();
        assert!(e.queries_per_shard().contains(&0));
        e.process_document(d1()).unwrap();
        let out = e.process_document(d2()).unwrap();
        assert_eq!(out.len(), 1);
    }
}
