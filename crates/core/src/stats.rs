//! Engine statistics and per-phase timings.
//!
//! Figures 14 and 15 of the paper break the total conjunctive-query
//! processing time into the time spent computing `Rvj`, `RL`, `RR` and the
//! per-template conjunctive queries. [`PhaseTimings`] records exactly those
//! phases (plus Stage-1, output construction and state maintenance, which the
//! paper reports separately or excludes).

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;
use std::time::Duration;

/// Cumulative wall-clock time per processing phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Stage 1: XPath evaluation and witness-relation construction.
    pub xpath: Duration,
    /// Computing the common string values `STR` / the `Rvj` semi-join
    /// (view-materialization mode only).
    pub compute_rvj: Duration,
    /// Computing (or fetching from the view cache) the `RL` slices.
    pub compute_rl: Duration,
    /// Computing the `RR` slices.
    pub compute_rr: Duration,
    /// Evaluating the per-template (or per-query, in Sequential mode)
    /// conjunctive queries.
    pub conjunctive: Duration,
    /// Temporal filtering and output-document construction (Algorithm 3).
    pub output: Duration,
    /// Join-state and view-cache maintenance (Algorithms 2 and 5).
    pub maintenance: Duration,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.xpath
            + self.compute_rvj
            + self.compute_rl
            + self.compute_rr
            + self.conjunctive
            + self.output
            + self.maintenance
    }

    /// The portion the paper calls "total conjunctive query processing time"
    /// in Figures 8–15: everything in Stage 2 except output construction and
    /// state maintenance.
    pub fn stage2_join_time(&self) -> Duration {
        self.compute_rvj + self.compute_rl + self.compute_rr + self.conjunctive
    }
}

impl AddAssign for PhaseTimings {
    fn add_assign(&mut self, rhs: Self) {
        self.xpath += rhs.xpath;
        self.compute_rvj += rhs.compute_rvj;
        self.compute_rl += rhs.compute_rl;
        self.compute_rr += rhs.compute_rr;
        self.conjunctive += rhs.conjunctive;
        self.output += rhs.output;
        self.maintenance += rhs.maintenance;
    }
}

/// Cumulative statistics for an engine instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Documents processed so far.
    pub documents_processed: usize,
    /// Query matches emitted so far.
    pub results_emitted: usize,
    /// Registered queries.
    pub queries_registered: usize,
    /// Distinct query templates currently in the catalog.
    pub templates: usize,
    /// Distinct tree patterns registered with the Stage-1 index.
    pub distinct_patterns: usize,
    /// Tuples currently held in the `Rbin` join-state relation.
    pub rbin_tuples: usize,
    /// Tuples currently held in the `Rdoc` join-state relation.
    pub rdoc_tuples: usize,
    /// View-cache hits (view-materialization mode).
    pub view_cache_hits: usize,
    /// View-cache misses.
    pub view_cache_misses: usize,
    /// View-cache evictions.
    pub view_cache_evictions: usize,
    /// Cumulative per-phase timings.
    pub timings: PhaseTimings,
}

impl EngineStats {
    /// Throughput in documents per second over the total measured time.
    /// Returns 0.0 before any document has been processed.
    pub fn throughput_docs_per_sec(&self) -> f64 {
        let secs = self.timings.total().as_secs_f64();
        if secs == 0.0 || self.documents_processed == 0 {
            0.0
        } else {
            self.documents_processed as f64 / secs
        }
    }

    /// Throughput counting only Stage-2 join time, matching the paper's
    /// Figure 16 measurement (which excludes loading and Stage-1 cost).
    pub fn join_throughput_docs_per_sec(&self) -> f64 {
        let secs = self.timings.stage2_join_time().as_secs_f64();
        if secs == 0.0 || self.documents_processed == 0 {
            0.0
        } else {
            self.documents_processed as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = PhaseTimings {
            xpath: Duration::from_millis(1),
            compute_rvj: Duration::from_millis(2),
            compute_rl: Duration::from_millis(3),
            compute_rr: Duration::from_millis(4),
            conjunctive: Duration::from_millis(5),
            output: Duration::from_millis(6),
            maintenance: Duration::from_millis(7),
        };
        assert_eq!(t.total(), Duration::from_millis(28));
        assert_eq!(t.stage2_join_time(), Duration::from_millis(14));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = PhaseTimings {
            xpath: Duration::from_millis(1),
            ..Default::default()
        };
        let b = PhaseTimings {
            xpath: Duration::from_millis(2),
            conjunctive: Duration::from_millis(3),
            ..Default::default()
        };
        a += b;
        assert_eq!(a.xpath, Duration::from_millis(3));
        assert_eq!(a.conjunctive, Duration::from_millis(3));
    }

    #[test]
    fn throughput_handles_zero() {
        let s = EngineStats::default();
        assert_eq!(s.throughput_docs_per_sec(), 0.0);
        assert_eq!(s.join_throughput_docs_per_sec(), 0.0);
    }

    #[test]
    fn throughput_positive_when_measured() {
        let s = EngineStats {
            documents_processed: 10,
            timings: PhaseTimings {
                conjunctive: Duration::from_millis(100),
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(s.throughput_docs_per_sec() > 0.0);
        assert!((s.join_throughput_docs_per_sec() - 100.0).abs() < 1e-9);
    }
}
