//! Engine statistics and per-phase timings.
//!
//! Figures 14 and 15 of the paper break the total conjunctive-query
//! processing time into the time spent computing `Rvj`, `RL`, `RR` and the
//! per-template conjunctive queries. [`PhaseTimings`] records exactly those
//! phases (plus Stage-1, output construction and state maintenance, which the
//! paper reports separately or excludes).

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign};
use std::time::Duration;

/// Cumulative wall-clock time per processing phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Stage 1: XPath evaluation — pattern matching and witness/edge-binding
    /// enumeration, whichever front end (per-pattern DOM walks or the shared
    /// streaming automaton) produced them.
    pub xpath: Duration,
    /// Witness-relation construction: ingesting the Stage-1 edge bindings
    /// into the batch's `RbinW`/`RdocW` relations. Identical byte-for-byte
    /// work under either Stage-1 front end, so it is kept out of
    /// [`xpath`](Self::xpath) — that bucket compares the front strategies.
    pub ingest: Duration,
    /// Computing the common string values `STR` / the `Rvj` semi-join
    /// (view-materialization mode), or gathering the batch-restricted
    /// `Rdoc`/`Rbin` inputs shared by every template (basic MMQJP mode).
    pub compute_rvj: Duration,
    /// Computing (or fetching from the view cache) the `RL` slices.
    pub compute_rl: Duration,
    /// Computing the `RR` slices.
    pub compute_rr: Duration,
    /// Evaluating the per-template (or per-query, in Sequential mode)
    /// conjunctive queries: selection, join ordering and the row-id join
    /// pipeline (everything up to the final head projection).
    pub conjunctive: Duration,
    /// Materializing output tuples at the final head projection of the
    /// compiled plans (the late-materialization step of the columnar
    /// kernel). Split out from [`conjunctive`](Self::conjunctive) so the
    /// per-stage cost of a batch is visible.
    pub materialize: Duration,
    /// Temporal filtering and output-document construction (Algorithm 3).
    pub output: Duration,
    /// Join-state and view-cache maintenance (Algorithms 2 and 5).
    pub maintenance: Duration,
    /// Failure recovery: respawning dead workers, re-registering surviving
    /// subscriptions and replaying the in-window join state from the
    /// `ReplayLog`. Zero on a fault-free stream.
    pub recovery: Duration,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.xpath
            + self.ingest
            + self.compute_rvj
            + self.compute_rl
            + self.compute_rr
            + self.conjunctive
            + self.materialize
            + self.output
            + self.maintenance
            + self.recovery
    }

    /// The portion the paper calls "total conjunctive query processing time"
    /// in Figures 8–15: everything in Stage 2 except output construction and
    /// state maintenance.
    pub fn stage2_join_time(&self) -> Duration {
        self.compute_rvj + self.compute_rl + self.compute_rr + self.conjunctive + self.materialize
    }
}

impl AddAssign for PhaseTimings {
    fn add_assign(&mut self, rhs: Self) {
        self.xpath += rhs.xpath;
        self.ingest += rhs.ingest;
        self.compute_rvj += rhs.compute_rvj;
        self.compute_rl += rhs.compute_rl;
        self.compute_rr += rhs.compute_rr;
        self.conjunctive += rhs.conjunctive;
        self.materialize += rhs.materialize;
        self.output += rhs.output;
        self.maintenance += rhs.maintenance;
        self.recovery += rhs.recovery;
    }
}

/// Cumulative statistics for an engine instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Documents processed so far.
    pub documents_processed: usize,
    /// Query matches emitted so far.
    pub results_emitted: usize,
    /// Live registered queries (registered and not unregistered).
    pub queries_registered: usize,
    /// Queries unregistered so far (cumulative).
    pub queries_unregistered: usize,
    /// Distinct query templates currently live in the catalog.
    pub templates: usize,
    /// Templates retired so far because their last member query
    /// unregistered (cumulative).
    pub templates_retired: usize,
    /// Distinct tree patterns currently live in the Stage-1 index.
    pub distinct_patterns: usize,
    /// Stage-1 patterns dropped so far because their last subscriber
    /// unregistered (cumulative).
    pub patterns_dropped: usize,
    /// Tuples currently held in the `Rbin` join-state relation.
    pub rbin_tuples: usize,
    /// Tuples currently held in the `Rdoc` join-state relation.
    pub rdoc_tuples: usize,
    /// Timestamp buckets currently resident in the segmented join state.
    pub state_buckets: usize,
    /// Documents currently retained for output construction / temporal
    /// filtering.
    pub docs_retained: usize,
    /// Join-state buckets dropped by window expiry so far.
    pub state_buckets_evicted: usize,
    /// Join-state rows (`Rbin` + `Rdoc`) dropped by window expiry so far.
    pub state_rows_evicted: usize,
    /// Retained documents (and their timestamps) evicted so far.
    pub docs_evicted: usize,
    /// Materialized `RL` view-cache slices invalidated by window expiry so
    /// far (targeted invalidation — unaffected slices survive pruning).
    pub view_slices_invalidated: usize,
    /// View-cache hits (view-materialization mode).
    pub view_cache_hits: usize,
    /// View-cache misses.
    pub view_cache_misses: usize,
    /// View-cache evictions.
    pub view_cache_evictions: usize,
    /// Physical plans compiled at registration time (cumulative; one per
    /// new template in the MMQJP modes — the variant the engine's mode
    /// executes — and one per orientation in Sequential mode). Plans are
    /// executed by reference per batch, never re-compiled or cloned on the
    /// hot path.
    pub plans_compiled: usize,
    /// Output tuples materialized by the compiled-plan executor. Late
    /// materialization builds each result row exactly once, at the final
    /// head projection; intermediate join results are row ids only.
    pub rows_materialized: usize,
    /// Plan executions that ran on the engine's pooled scratch buffers —
    /// every execution after the first. Together with
    /// [`plans_compiled`](Self::plans_compiled) this certifies that plans
    /// and executor buffers are engine-lifetime objects, not per-batch
    /// ones: an execution allocates nothing but its result relation.
    pub scratch_reuses: usize,
    /// Documents parsed and Stage-1-evaluated exactly once by the hybrid
    /// front stage of [`ShardedEngine`](crate::ShardedEngine) (with
    /// `front_pool >= 1`). Zero for single engines and for the replicated
    /// topology, where every shard re-parses every document.
    pub docs_parsed_once: usize,
    /// Witness rows (`RbinW` + `RdocW`) the hybrid front stage routed to
    /// query shards. Rows for a pattern travel only to the shards whose
    /// queries subscribed to it, so this counts deliveries: a row shared by
    /// subscribers on two shards is routed (and counted) twice.
    pub witnesses_routed: usize,
    /// Batches for which the pipelined hybrid front finished Stage 1 of
    /// batch `k+1` before the shards had finished Stage 2 of batch `k` —
    /// i.e. the front stalled waiting for the join stage. A high ratio of
    /// stalls to batches means Stage 2 is the bottleneck and more shards
    /// would help; zero stalls mean Stage 1 is.
    pub pipeline_stalls: usize,
    /// Worker threads (shard or front) respawned by the supervisor after a
    /// contained panic or a dropped channel — automatically under
    /// [`FaultPolicy::Quarantine`](crate::FaultPolicy), or via a manual
    /// `ShardedEngine::respawn_shard` under
    /// [`FaultPolicy::Degrade`](crate::FaultPolicy).
    pub shards_respawned: usize,
    /// Poison documents skipped (with a typed `QuarantineRecord`) instead of
    /// failing their batch, under
    /// [`FaultPolicy::Quarantine`](crate::FaultPolicy).
    pub docs_quarantined: usize,
    /// Witness rows (`RbinW` + `RdocW`) rebuilt from the `ReplayLog` while
    /// recovering a respawned shard's in-window join state.
    pub rows_replayed: usize,
    /// Faults actually injected by a `FaultInjector` driving this engine.
    /// Always zero outside the deterministic chaos harness; a benign (empty)
    /// `FaultPlan` keeps it at zero by definition.
    pub faults_injected: usize,
    /// Cumulative per-phase timings.
    pub timings: PhaseTimings,
}

impl EngineStats {
    /// Throughput in documents per second over the total measured time.
    /// Returns 0.0 before any document has been processed.
    pub fn throughput_docs_per_sec(&self) -> f64 {
        let secs = self.timings.total().as_secs_f64();
        if secs == 0.0 || self.documents_processed == 0 {
            0.0
        } else {
            self.documents_processed as f64 / secs
        }
    }

    /// Throughput counting only Stage-2 join time, matching the paper's
    /// Figure 16 measurement (which excludes loading and Stage-1 cost).
    pub fn join_throughput_docs_per_sec(&self) -> f64 {
        let secs = self.timings.stage2_join_time().as_secs_f64();
        if secs == 0.0 || self.documents_processed == 0 {
            0.0
        } else {
            self.documents_processed as f64 / secs
        }
    }
}

/// Summing engine stats adds every counter and timing field. This is the
/// aggregation [`ShardedEngine`](crate::ShardedEngine) uses: each query lives
/// in exactly one shard, so `queries_registered` sums to the global query
/// count, while per-shard quantities (`documents_processed`, `templates`,
/// timings, ...) sum to the total work done across all shards. In the
/// replicated topology (`front_pool == 0`) every document is replicated to
/// every shard, so `documents_processed` of an `N`-shard engine is `N ×` the
/// number of ingested documents; in the hybrid topology documents are
/// counted once, by the front stage, so the aggregate equals the number of
/// ingested documents.
impl AddAssign for EngineStats {
    fn add_assign(&mut self, rhs: Self) {
        self.documents_processed += rhs.documents_processed;
        self.results_emitted += rhs.results_emitted;
        self.queries_registered += rhs.queries_registered;
        self.queries_unregistered += rhs.queries_unregistered;
        self.templates += rhs.templates;
        self.templates_retired += rhs.templates_retired;
        self.distinct_patterns += rhs.distinct_patterns;
        self.patterns_dropped += rhs.patterns_dropped;
        self.rbin_tuples += rhs.rbin_tuples;
        self.rdoc_tuples += rhs.rdoc_tuples;
        self.state_buckets += rhs.state_buckets;
        self.docs_retained += rhs.docs_retained;
        self.state_buckets_evicted += rhs.state_buckets_evicted;
        self.state_rows_evicted += rhs.state_rows_evicted;
        self.docs_evicted += rhs.docs_evicted;
        self.view_slices_invalidated += rhs.view_slices_invalidated;
        self.view_cache_hits += rhs.view_cache_hits;
        self.view_cache_misses += rhs.view_cache_misses;
        self.view_cache_evictions += rhs.view_cache_evictions;
        self.plans_compiled += rhs.plans_compiled;
        self.rows_materialized += rhs.rows_materialized;
        self.scratch_reuses += rhs.scratch_reuses;
        self.docs_parsed_once += rhs.docs_parsed_once;
        self.witnesses_routed += rhs.witnesses_routed;
        self.pipeline_stalls += rhs.pipeline_stalls;
        self.shards_respawned += rhs.shards_respawned;
        self.docs_quarantined += rhs.docs_quarantined;
        self.rows_replayed += rhs.rows_replayed;
        self.faults_injected += rhs.faults_injected;
        self.timings += rhs.timings;
    }
}

impl Add for EngineStats {
    type Output = EngineStats;

    fn add(mut self, rhs: Self) -> EngineStats {
        self += rhs;
        self
    }
}

impl Sum for EngineStats {
    fn sum<I: Iterator<Item = EngineStats>>(iter: I) -> EngineStats {
        iter.fold(EngineStats::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = PhaseTimings {
            xpath: Duration::from_millis(1),
            ingest: Duration::from_millis(9),
            compute_rvj: Duration::from_millis(2),
            compute_rl: Duration::from_millis(3),
            compute_rr: Duration::from_millis(4),
            conjunctive: Duration::from_millis(5),
            materialize: Duration::from_millis(8),
            output: Duration::from_millis(6),
            maintenance: Duration::from_millis(7),
            recovery: Duration::from_millis(10),
        };
        assert_eq!(t.total(), Duration::from_millis(55));
        assert_eq!(t.stage2_join_time(), Duration::from_millis(22));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = PhaseTimings {
            xpath: Duration::from_millis(1),
            ..Default::default()
        };
        let b = PhaseTimings {
            xpath: Duration::from_millis(2),
            conjunctive: Duration::from_millis(3),
            ..Default::default()
        };
        a += b;
        assert_eq!(a.xpath, Duration::from_millis(3));
        assert_eq!(a.conjunctive, Duration::from_millis(3));
    }

    #[test]
    fn throughput_handles_zero() {
        let s = EngineStats::default();
        assert_eq!(s.throughput_docs_per_sec(), 0.0);
        assert_eq!(s.join_throughput_docs_per_sec(), 0.0);
    }

    #[test]
    fn engine_stats_sum_adds_every_counter() {
        let a = EngineStats {
            documents_processed: 1,
            results_emitted: 2,
            queries_registered: 3,
            queries_unregistered: 11,
            templates: 4,
            templates_retired: 12,
            distinct_patterns: 5,
            patterns_dropped: 13,
            rbin_tuples: 6,
            rdoc_tuples: 7,
            state_buckets: 1,
            docs_retained: 2,
            state_buckets_evicted: 3,
            state_rows_evicted: 4,
            docs_evicted: 5,
            view_slices_invalidated: 6,
            view_cache_hits: 8,
            view_cache_misses: 9,
            view_cache_evictions: 10,
            plans_compiled: 14,
            rows_materialized: 15,
            scratch_reuses: 16,
            docs_parsed_once: 17,
            witnesses_routed: 18,
            pipeline_stalls: 19,
            shards_respawned: 21,
            docs_quarantined: 22,
            rows_replayed: 23,
            faults_injected: 24,
            timings: PhaseTimings {
                xpath: Duration::from_millis(1),
                ..Default::default()
            },
        };
        let b = EngineStats {
            documents_processed: 10,
            results_emitted: 20,
            queries_registered: 30,
            queries_unregistered: 110,
            templates: 40,
            templates_retired: 120,
            distinct_patterns: 50,
            patterns_dropped: 130,
            rbin_tuples: 60,
            rdoc_tuples: 70,
            state_buckets: 10,
            docs_retained: 20,
            state_buckets_evicted: 30,
            state_rows_evicted: 40,
            docs_evicted: 50,
            view_slices_invalidated: 60,
            view_cache_hits: 80,
            view_cache_misses: 90,
            view_cache_evictions: 100,
            plans_compiled: 140,
            rows_materialized: 150,
            scratch_reuses: 160,
            docs_parsed_once: 170,
            witnesses_routed: 180,
            pipeline_stalls: 190,
            shards_respawned: 210,
            docs_quarantined: 220,
            rows_replayed: 230,
            faults_injected: 240,
            timings: PhaseTimings {
                xpath: Duration::from_millis(2),
                ..Default::default()
            },
        };
        let s: EngineStats = [a, b].into_iter().sum();
        assert_eq!(s.documents_processed, 11);
        assert_eq!(s.results_emitted, 22);
        assert_eq!(s.queries_registered, 33);
        assert_eq!(s.queries_unregistered, 121);
        assert_eq!(s.templates, 44);
        assert_eq!(s.templates_retired, 132);
        assert_eq!(s.distinct_patterns, 55);
        assert_eq!(s.patterns_dropped, 143);
        assert_eq!(s.rbin_tuples, 66);
        assert_eq!(s.rdoc_tuples, 77);
        assert_eq!(s.state_buckets, 11);
        assert_eq!(s.docs_retained, 22);
        assert_eq!(s.state_buckets_evicted, 33);
        assert_eq!(s.state_rows_evicted, 44);
        assert_eq!(s.docs_evicted, 55);
        assert_eq!(s.view_slices_invalidated, 66);
        assert_eq!(s.view_cache_hits, 88);
        assert_eq!(s.view_cache_misses, 99);
        assert_eq!(s.view_cache_evictions, 110);
        assert_eq!(s.plans_compiled, 154);
        assert_eq!(s.rows_materialized, 165);
        assert_eq!(s.scratch_reuses, 176);
        assert_eq!(s.docs_parsed_once, 187);
        assert_eq!(s.witnesses_routed, 198);
        assert_eq!(s.pipeline_stalls, 209);
        assert_eq!(s.shards_respawned, 231);
        assert_eq!(s.docs_quarantined, 242);
        assert_eq!(s.rows_replayed, 253);
        assert_eq!(s.faults_injected, 264);
        assert_eq!(s.timings.xpath, Duration::from_millis(3));
        assert_eq!(s, a + b);
        assert_eq!(
            Vec::<EngineStats>::new().into_iter().sum::<EngineStats>(),
            EngineStats::default()
        );
    }

    #[test]
    fn throughput_positive_when_measured() {
        let s = EngineStats {
            documents_processed: 10,
            timings: PhaseTimings {
                conjunctive: Duration::from_millis(100),
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(s.throughput_docs_per_sec() > 0.0);
        assert!((s.join_throughput_docs_per_sec() - 100.0).abs() < 1e-9);
    }
}
