//! Quickstart: register the paper's three example queries (Table 1 / Table 2)
//! and run the Section 4.4.1 walkthrough — a book announcement followed by a
//! blog article by one of its authors.
//!
//! Run with `cargo run -p mmqjp-examples --bin quickstart`.

use mmqjp_core::{EngineConfig, MmqjpEngine};
use mmqjp_examples::print_match;
use mmqjp_xml::rss;
use mmqjp_xml::Timestamp;

fn main() {
    let mut engine = MmqjpEngine::new(EngineConfig::mmqjp_view_mat());

    // Q1: a book announcement followed by a blog article from one of its
    // authors with the same title as the book.
    let q1 = "S//book->x1[.//author->x2][.//title->x3] \
              FOLLOWED BY{x2=x5 AND x3=x6, 1000} \
              S//blog->x4[.//author->x5][.//title->x6]";
    // Q2: ... on the same category as the book.
    let q2 = "S//book->x1[.//author->x2][.//category->x7] \
              FOLLOWED BY{x2=x5 AND x7=x8, 1000} \
              S//blog->x4[.//author->x5][.//category->x8]";
    // Q3: a pair of blog postings by the same author with the same title.
    let q3 = "S//blog->x4[.//author->x5][.//title->x6] \
              FOLLOWED BY{x5=x5' AND x6=x6', 1000} \
              S//blog->x4'[.//author->x5'][.//title->x6']";

    for (name, text) in [("Q1", q1), ("Q2", q2), ("Q3", q3)] {
        let id = engine.register_query_text(text).expect("query parses");
        println!("registered {name} as {id}");
    }
    println!(
        "{} queries share {} query template(s) over {} distinct tree patterns\n",
        engine.num_queries(),
        engine.num_templates(),
        engine.num_patterns()
    );

    // Document d1 (Figure 1): the book announcement.
    let d1 = rss::book_announcement(
        &["Danny Ayers", "Andrew Watt"],
        "Beginning RSS and Atom Programming",
        &["Scripting & Programming", "Web Site Development"],
        "Wrox",
        "0764579169",
    )
    .with_timestamp(Timestamp(10));

    // Document d2 (Figure 2): the blog article by Danny Ayers about the book.
    let d2 = rss::blog_article(
        "Danny Ayers",
        "http://dannyayers.com/topics/books/rss-book",
        "Beginning RSS and Atom Programming",
        "Scripting & Programming",
        "Just heard ...",
    )
    .with_timestamp(Timestamp(25));

    println!("processing d1 (book announcement) ...");
    let out = engine.process_document(d1).expect("processing succeeds");
    println!("  {} match(es)\n", out.len());

    println!("processing d2 (blog article) ...");
    let out = engine.process_document(d2).expect("processing succeeds");
    println!("  {} match(es)", out.len());
    for m in &out {
        print_match(m);
    }

    let stats = engine.stats();
    println!(
        "\nprocessed {} documents, emitted {} results, total join time {:?}",
        stats.documents_processed,
        stats.results_emitted,
        stats.timings.stage2_join_time()
    );
}
