//! Explore query-template sharing: how many distinct templates does a large
//! randomly generated query set collapse to? Also prints the Table 3
//! enumeration (possible templates per number of value joins).
//!
//! Run with `cargo run --release -p mmqjp-examples --bin template_explorer -- [QUERIES]`
//! (default: 10000 queries).

use mmqjp_core::{EngineConfig, MmqjpEngine};
use mmqjp_examples::arg_or;
use mmqjp_workload::{ComplexSchemaWorkload, FlatSchemaWorkload};
use mmqjp_xscl::enumerate::{count_complex_templates, count_flat_templates};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let num_queries = arg_or(1, 10_000);

    println!("Table 3 — number of possible query templates by #value joins");
    println!(
        "{:>4}  {:>12}  {:>15}",
        "#VJ", "flat schema", "complex schema"
    );
    for k in 1..=4 {
        let flat = count_flat_templates(k);
        let complex = if k <= 3 {
            count_complex_templates(k, 4).to_string()
        } else {
            // k = 4 takes a few seconds; keep the default run snappy.
            "(run table3 bench)".to_owned()
        };
        println!("{k:>4}  {flat:>12}  {complex:>15}");
    }

    println!("\nTemplate sharing over {num_queries} random queries");
    let mut rng = StdRng::seed_from_u64(7);

    let flat = FlatSchemaWorkload::new(6, 0.8);
    let mut engine = MmqjpEngine::new(EngineConfig::mmqjp());
    for q in flat.generate_queries(num_queries, &mut rng) {
        engine
            .register_query(q)
            .expect("generated queries are valid");
    }
    println!(
        "  simple schema (6 leaves):  {} queries -> {} templates, {} distinct patterns",
        engine.num_queries(),
        engine.num_templates(),
        engine.num_patterns()
    );

    let complex = ComplexSchemaWorkload::new(4, 4, 0.8);
    let mut engine = MmqjpEngine::new(EngineConfig::mmqjp());
    for q in complex.generate_queries(num_queries, &mut rng) {
        engine
            .register_query(q)
            .expect("generated queries are valid");
    }
    println!(
        "  complex schema (16 leaves): {} queries -> {} templates, {} distinct patterns",
        engine.num_queries(),
        engine.num_templates(),
        engine.num_patterns()
    );

    println!(
        "\nEvery query in a template is answered by one shared relational \
         conjunctive query; the join work grows with the number of templates, \
         not the number of queries."
    );
}
