//! Shared helpers for the example binaries.
//!
//! The examples are runnable with, e.g.:
//!
//! ```text
//! cargo run -p mmqjp-examples --bin quickstart
//! cargo run -p mmqjp-examples --bin blog_book_announcements
//! cargo run -p mmqjp-examples --bin rss_monitoring -- 5000 2000
//! cargo run -p mmqjp-examples --bin template_explorer -- 10000
//! ```

#![forbid(unsafe_code)]

use mmqjp_core::MatchOutput;
use mmqjp_xml::serialize_pretty;

/// Pretty-print a match for the console.
pub fn print_match(m: &MatchOutput) {
    println!(
        "  {} matched: left doc {} / right doc {}",
        m.query, m.left_doc, m.right_doc
    );
    for b in &m.bindings {
        println!("    {b}");
    }
    if let Some(doc) = &m.document {
        println!("    output document:");
        for line in serialize_pretty(doc).lines() {
            println!("      {line}");
        }
    }
}

/// Parse a positional numeric argument with a default.
pub fn arg_or(index: usize, default: usize) -> usize {
    std::env::args()
        .nth(index)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}
