//! Internet-scale RSS feed monitoring (the paper's Section 6.3 scenario):
//! hundreds of thousands of join subscriptions over a synthetic RSS/Atom
//! stream.
//!
//! Run with `cargo run --release -p mmqjp-examples --bin rss_monitoring -- [ITEMS] [QUERIES]`
//! (defaults: 2000 items, 1000 queries).

use mmqjp_core::{EngineConfig, MmqjpEngine, ProcessingMode};
use mmqjp_examples::arg_or;
use mmqjp_workload::{RssQueryGenerator, RssStreamConfig, RssStreamGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let items = arg_or(1, 2000);
    let num_queries = arg_or(2, 1000);

    println!("synthetic RSS stream: {items} items from 418 channels");
    println!("registering {num_queries} join subscriptions over the feed-item fields\n");

    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(2006);
    let queries = generator.generate_queries(num_queries, &mut rng);

    for mode in [ProcessingMode::MmqjpViewMat, ProcessingMode::Mmqjp] {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        }
        .with_retain_documents(false);
        let mut engine = MmqjpEngine::new(config);
        for q in queries.clone() {
            engine
                .register_query(q)
                .expect("generated queries are valid");
        }

        let stream = RssStreamGenerator::new(RssStreamConfig {
            items,
            ..RssStreamConfig::default()
        });
        let start = Instant::now();
        let mut matches = 0usize;
        for chunk in stream.documents().chunks(500) {
            matches += engine
                .process_batch(chunk.to_vec())
                .expect("processing succeeds")
                .len();
        }
        let elapsed = start.elapsed();
        let stats = engine.stats();
        println!(
            "{:10}: {} templates, {matches} matches, wall time {elapsed:?}, \
             join throughput {:.0} events/s (Stage-2 only), view cache hits {}",
            mode.label(),
            engine.num_templates(),
            stats.join_throughput_docs_per_sec(),
            stats.view_cache_hits,
        );
    }
}
