//! Internet-scale RSS feed monitoring (the paper's Section 6.3 scenario):
//! hundreds of thousands of join subscriptions over a synthetic RSS/Atom
//! stream, single-threaded and sharded across cores.
//!
//! Run with
//! `cargo run --release -p mmqjp-examples --bin rss_monitoring -- [ITEMS] [QUERIES] [SHARDS]`
//! (defaults: 2000 items, 1000 queries, one shard per available core).

use mmqjp_core::{EngineConfig, MmqjpEngine, ProcessingMode, ShardedEngine};
use mmqjp_examples::arg_or;
use mmqjp_workload::{RssQueryGenerator, RssStreamConfig, RssStreamGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    let items = arg_or(1, 2000);
    let num_queries = arg_or(2, 1000);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let num_shards = arg_or(3, cores);

    println!("synthetic RSS stream: {items} items from 418 channels");
    println!("registering {num_queries} join subscriptions over the feed-item fields\n");

    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(2006);
    let queries = generator.generate_queries(num_queries, &mut rng);

    // Generate the stream once, outside every timed region, so the reported
    // wall times and the sharded speedup measure engine work only.
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items,
        ..RssStreamConfig::default()
    })
    .documents();

    let mut single_wall: Option<Duration> = None;
    for mode in [ProcessingMode::MmqjpViewMat, ProcessingMode::Mmqjp] {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        }
        .with_retain_documents(false);
        let mut engine = MmqjpEngine::new(config);
        for q in queries.clone() {
            engine
                .register_query(q)
                .expect("generated queries are valid");
        }

        let start = Instant::now();
        let mut matches = 0usize;
        for chunk in docs.chunks(500) {
            matches += engine
                .process_batch(chunk.to_vec())
                .expect("processing succeeds")
                .len();
        }
        let elapsed = start.elapsed();
        if mode == ProcessingMode::MmqjpViewMat {
            single_wall = Some(elapsed);
        }
        let stats = engine.stats();
        println!(
            "{:10}: {} templates, {matches} matches, wall time {elapsed:?}, \
             join throughput {:.0} events/s (Stage-2 only), view cache hits {}",
            mode.label(),
            engine.num_templates(),
            stats.join_throughput_docs_per_sec(),
            stats.view_cache_hits,
        );
    }

    // The same workload, sharded across worker threads: the query population
    // is hash-partitioned, the stream replicated, and the merged output is
    // identical to the single-engine runs above.
    let config = EngineConfig::mmqjp_view_mat()
        .with_retain_documents(false)
        .with_num_shards(num_shards);
    let mut engine = ShardedEngine::new(config);
    for q in queries {
        engine
            .register_query(q)
            .expect("generated queries are valid");
    }
    println!(
        "\nsharded MMQJP+VM: {num_shards} shards on {cores} cores, queries per shard {:?}",
        engine.queries_per_shard()
    );
    let start = Instant::now();
    let mut matches = 0usize;
    for chunk in docs.chunks(500) {
        matches += engine
            .process_batch(chunk.to_vec())
            .expect("processing succeeds")
            .len();
    }
    let elapsed = start.elapsed();
    print!("sharded   : {matches} matches, wall time {elapsed:?}");
    if let Some(single) = single_wall {
        println!(
            ", speedup over single-threaded MMQJP+VM {:.2}x",
            single.as_secs_f64() / elapsed.as_secs_f64().max(f64::EPSILON)
        );
    } else {
        println!();
    }
}
