//! The introduction's motivating scenario: monitoring book announcements and
//! the blogosphere's reaction to them.
//!
//! A small stream of book announcements and blog articles flows through the
//! engine while several subscriptions watch for correlated events:
//!
//! * authors blogging about their own new book (same author + same title);
//! * follow-up posts in the same category as a recent announcement;
//! * blog cross-postings (same author + title appearing twice).
//!
//! Run with `cargo run -p mmqjp-examples --bin blog_book_announcements`.

use mmqjp_core::{EngineConfig, MmqjpEngine};
use mmqjp_examples::print_match;
use mmqjp_xml::{rss, Document, Timestamp};

fn stream() -> Vec<Document> {
    let mut docs = vec![
        rss::book_announcement(
            &["Danny Ayers", "Andrew Watt"],
            "Beginning RSS and Atom Programming",
            &["Scripting & Programming", "Web Site Development"],
            "Wrox",
            "0764579169",
        ),
        rss::book_announcement(
            &["Leslie Lamport"],
            "Specifying Systems",
            &["Formal Methods"],
            "Addison-Wesley",
            "032114306X",
        ),
        rss::blog_article(
            "Danny Ayers",
            "http://dannyayers.com/topics/books/rss-book",
            "Beginning RSS and Atom Programming",
            "Scripting & Programming",
            "Just heard the book is out!",
        ),
        rss::blog_article(
            "Random Reader",
            "http://planet.example.org/feeds/reader",
            "Weekend reading list",
            "Formal Methods",
            "Picked up Specifying Systems after the announcement.",
        ),
        rss::blog_article(
            "Danny Ayers",
            "http://mirror.example.org/syndicated",
            "Beginning RSS and Atom Programming",
            "Book Announcement",
            "Cross-posted from my main blog.",
        ),
    ];
    for (i, d) in docs.iter_mut().enumerate() {
        d.set_timestamp(Timestamp(10 * (i as u64 + 1)));
    }
    docs
}

fn main() {
    let mut engine = MmqjpEngine::new(EngineConfig::mmqjp_view_mat());

    let subscriptions = [
        (
            "author blogs about their own book",
            "S//book->b[.//author->a][.//title->t] \
             FOLLOWED BY{a=a2 AND t=t2, 100} \
             S//blog->g[.//author->a2][.//title->t2]",
        ),
        (
            "follow-up post in an announced category",
            "S//book->b[.//category->c] \
             FOLLOWED BY{c=c2, 100} \
             S//blog->g[.//category->c2]",
        ),
        (
            "blog cross-posting",
            "S//blog->g1[.//author->a1][.//title->t1] \
             FOLLOWED BY{a1=a2 AND t1=t2, 100} \
             S//blog->g2[.//author->a2][.//title->t2]",
        ),
    ];
    for (label, text) in subscriptions {
        let id = engine.register_query_text(text).expect("query parses");
        println!("{id}: {label}");
    }
    println!(
        "\n{} subscriptions compiled into {} query template(s)\n",
        engine.num_queries(),
        engine.num_templates()
    );

    for doc in stream() {
        let kind = doc.root().tag().to_owned();
        let title = rss::leaf_value(&doc, "title");
        println!("event: <{kind}> \"{title}\"");
        let matches = engine.process_document(doc).expect("processing succeeds");
        if matches.is_empty() {
            println!("  no subscriptions fired");
        }
        for m in &matches {
            print_match(m);
        }
        println!();
    }

    let stats = engine.stats();
    println!(
        "processed {} events, {} notifications, join state: {} Rbin / {} Rdoc tuples",
        stats.documents_processed, stats.results_emitted, stats.rbin_tuples, stats.rdoc_tuples
    );
}
