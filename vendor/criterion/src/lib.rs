//! Minimal, offline stand-in for the parts of `criterion` this workspace
//! uses: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! There is no statistical analysis: each benchmark runs a short timed loop
//! and prints the mean wall-clock time per iteration. Setting
//! `MMQJP_BENCH_SCALE=smoke` (case-insensitive exact match) shrinks the loop
//! to a single measured iteration so CI smoke tests stay fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Benchmark driver handed to the functions in a [`criterion_group!`].
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn smoke_mode() -> bool {
    std::env::var("MMQJP_BENCH_SCALE")
        .map(|v| v.eq_ignore_ascii_case("smoke"))
        .unwrap_or(false)
}

impl Criterion {
    /// Set the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run `f` as a named benchmark and print its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let iters = if smoke_mode() { 1 } else { self.sample_size };
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
            measured: 0,
        };
        f(&mut bencher);
        let per_iter = if bencher.measured > 0 {
            bencher.elapsed.as_secs_f64() / bencher.measured as f64
        } else {
            0.0
        };
        println!(
            "bench {name:<48} {:>12.3} us/iter ({} iters)",
            per_iter * 1e6,
            bencher.measured,
        );
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
    measured: u64,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warmup iteration, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.measured += self.iters as u64;
    }

    /// Time `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.measured += 1;
        }
    }
}

/// Define a benchmark group: either `criterion_group!(name, target, ...)` or
/// the long `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the `main` function running one or more benchmark groups. `main`
/// is `pub` so a bench target compiled as a `#[path]` module (e.g. by a
/// smoke test) can invoke it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        pub fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_body(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3);
        group_body(&mut c);
    }
}
