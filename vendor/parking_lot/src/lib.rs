//! Minimal stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! Provides the panic-free (non-poisoning) `read()` / `write()` / `lock()`
//! API shape of `parking_lot` on top of the standard library primitives.
//! Poisoned locks are recovered rather than propagated, matching
//! `parking_lot`'s behavior of not poisoning at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, PoisonError};

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Access the inner value through an exclusive reference.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// A mutex with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Access the inner value through an exclusive reference.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let lock = RwLock::new(3usize);
        assert_eq!(*lock.read(), 3);
        *lock.write() += 1;
        assert_eq!(lock.into_inner(), 4);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
