//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] and [`seq::SliceRandom`].
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the exact API surface the workspace consumes. [`rngs::StdRng`] is
//! a xoshiro256++ generator seeded through SplitMix64 — deterministic for a
//! given seed, which is all the workload generators and tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Return the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniform value from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// Draw a boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator, seeded through SplitMix64.
    ///
    /// This is *not* the same stream as upstream `rand`'s `StdRng`; the
    /// workspace only relies on determinism for a fixed seed, not on any
    /// particular stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers: shuffling and choosing from slices.

    use super::Rng;

    /// Extension methods on slices that consume randomness.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Return a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
