//! Minimal, offline stand-in for the parts of `proptest` this workspace uses:
//! the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with `prop_map`,
//! range and tuple strategies, [`collection::vec`], [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each property runs
//! `ProptestConfig::cases` times with inputs drawn from a deterministic
//! per-test RNG (seeded from the test's name), and failures surface as plain
//! `assert!` panics that report the failing case number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Configuration accepted by `#![proptest_config(...)]` inside [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate a `Vec` whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test seed derived from the test's name.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        seed
    }
}

/// Run each contained `#[test] fn name(pat in strategy, ...) { body }` as a
/// property: the body executes once per configured case with fresh inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    $crate::__rt::seed_from_name(stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let __run = || -> () {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        )+
                        $body
                    };
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run));
                    if let Err(panic) = __result {
                        eprintln!(
                            "proptest stub: property {} failed on case {}/{}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

pub mod prelude {
    //! Glob-importable surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Mirrors `proptest::prelude::prop`.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0usize..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|x| *x < 5));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0i64..4, 1u64..3).prop_map(|(a, b)| a + b as i64)) {
            prop_assert!((1..=5).contains(&pair));
        }
    }
}
