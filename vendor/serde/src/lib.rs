//! Minimal, dependency-free stand-in for `serde`.
//!
//! The build environment has no access to crates.io. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking annotations (no code
//! actually serializes anything yet), so this stub provides marker traits with
//! blanket implementations and derive macros that expand to nothing. When the
//! real `serde` is available, this vendored crate can be deleted and the
//! workspace dependency pointed back at crates.io without touching any source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
