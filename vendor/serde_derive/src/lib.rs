//! No-op `Serialize` / `Deserialize` derives backing the vendored serde stub.
//!
//! The stub's traits carry blanket implementations, so the derives have
//! nothing to generate — they exist purely so `#[derive(Serialize,
//! Deserialize)]` attributes in the workspace compile unchanged.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing; the stub `Serialize` trait is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the stub `Deserialize` trait is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
