//! Shared helpers for the cross-crate integration test suite.
//!
//! The actual integration tests live under `tests/tests/`. This small library
//! crate exists so the workspace member has a compilation unit and so helpers
//! (document fixtures from the paper's Figures 1 and 2, common engine
//! configurations) can be shared between integration test binaries.

#![forbid(unsafe_code)]

pub mod fixtures;

pub use fixtures::*;
