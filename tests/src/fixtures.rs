//! Shared fixtures: the paper's running example (Figures 1–2, Tables 1–2)
//! and helpers for building engines in each processing mode.

use mmqjp_core::{
    sort_matches, AuditViolation, EngineConfig, FaultInjector, FaultPlan, MatchOutput, MmqjpEngine,
    ProcessingMode, ShardedEngine,
};
use mmqjp_xml::{rss, Document, Timestamp};

/// Q1 of Table 2: book announcement followed by a blog article from one of
/// its authors with the same title.
pub const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
    FOLLOWED BY{x2=x5 AND x3=x6, 1000} \
    S//blog->x4[.//author->x5][.//title->x6]";

/// Q2 of Table 2: same author, same category.
pub const Q2: &str = "S//book->x1[.//author->x2][.//category->x7] \
    FOLLOWED BY{x2=x5 AND x7=x8, 1000} \
    S//blog->x4[.//author->x5][.//category->x8]";

/// Q3 of Table 2: a pair of blog postings by the same author with the same
/// title.
pub const Q3: &str = "S//blog->x4[.//author->x5][.//title->x6] \
    FOLLOWED BY{x5=x5' AND x6=x6', 1000} \
    S//blog->x4'[.//author->x5'][.//title->x6']";

/// Document d1 of Figure 1 (the book announcement), timestamp 10.
pub fn d1() -> Document {
    rss::book_announcement(
        &["Danny Ayers", "Andrew Watt"],
        "Beginning RSS and Atom Programming",
        &["Scripting & Programming", "Web Site Development"],
        "Wrox",
        "0764579169",
    )
    .with_timestamp(Timestamp(10))
}

/// Document d2 of Figure 2 (the blog article), timestamp 25. The category is
/// chosen to also satisfy Q2, as in the paper's walkthrough (Table 4(f)).
pub fn d2() -> Document {
    rss::blog_article(
        "Danny Ayers",
        "http://dannyayers.com/topics/books/rss-book",
        "Beginning RSS and Atom Programming",
        "Scripting & Programming",
        "Just heard ...",
    )
    .with_timestamp(Timestamp(25))
}

/// All three processing modes.
pub fn all_modes() -> [ProcessingMode; 3] {
    [
        ProcessingMode::Sequential,
        ProcessingMode::Mmqjp,
        ProcessingMode::MmqjpViewMat,
    ]
}

/// Shard counts the equivalence suite exercises: the degenerate single shard,
/// even splits, and a count (7) that leaves some shards nearly or completely
/// empty on small query sets.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Front-pool sizes the hybrid-topology sweep exercises: a single worker (no
/// document parallelism, routing only), an even pool, and a pool larger than
/// most test batches (workers with empty slices).
pub const FRONT_POOLS: [usize; 3] = [1, 2, 4];

/// Build an engine in the given mode with the given queries registered.
pub fn engine_with_queries(mode: ProcessingMode, queries: &[&str]) -> MmqjpEngine {
    let config = EngineConfig {
        mode,
        ..EngineConfig::default()
    };
    let mut engine = MmqjpEngine::new(config);
    for q in queries {
        engine
            .register_query_text(q)
            .unwrap_or_else(|e| panic!("query {q:?} failed to register: {e}"));
    }
    engine
}

/// Render an audit's violations one per line for assertion messages.
fn render_violations(violations: &[AuditViolation]) -> String {
    violations
        .iter()
        .map(|v| format!("  - {v}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Assert a single engine's invariant audit comes back clean.
pub fn assert_audit_clean(engine: &MmqjpEngine) {
    let violations = engine.audit();
    assert!(
        violations.is_empty(),
        "engine invariant audit reported {} violation(s):\n{}",
        violations.len(),
        render_violations(&violations)
    );
}

/// Assert a sharded engine's invariant audit comes back clean across every
/// shard and the front stage.
pub fn assert_audit_clean_sharded(engine: &ShardedEngine) {
    let violations = engine.audit().expect("audit reaches every shard");
    assert!(
        violations.is_empty(),
        "sharded invariant audit reported {} violation(s):\n{}",
        violations.len(),
        render_violations(&violations)
    );
}

/// Run a stream of documents through an engine, collecting all matches.
/// The engine's invariant audit must come back clean afterwards.
pub fn run_stream(engine: &mut MmqjpEngine, docs: Vec<Document>) -> Vec<MatchOutput> {
    let mut out = Vec::new();
    for doc in docs {
        out.extend(engine.process_document(doc).expect("processing succeeds"));
    }
    assert_audit_clean(engine);
    out
}

/// Run a stream of documents through a sharded engine, collecting all
/// matches (each document's matches arrive already canonically ordered).
/// The cross-shard invariant audit must come back clean afterwards.
pub fn run_stream_sharded(engine: &mut ShardedEngine, docs: Vec<Document>) -> Vec<MatchOutput> {
    let mut out = Vec::new();
    for doc in docs {
        out.extend(engine.process_document(doc).expect("processing succeeds"));
    }
    assert_audit_clean_sharded(engine);
    out
}

/// Build a sharded engine from a (per-shard) config, shard count and query
/// set.
pub fn sharded_engine_with_queries(
    config: EngineConfig,
    num_shards: usize,
    queries: &[mmqjp_xscl::XsclQuery],
) -> ShardedEngine {
    let mut engine = ShardedEngine::new(config.with_num_shards(num_shards));
    // Every sharded fixture runs with a benign (empty) fault plan installed:
    // the injection plumbing must be zero-cost and non-perturbing, so every
    // equivalence assertion built on these fixtures proves exactly that.
    engine.set_fault_injector(FaultInjector::new(FaultPlan::none()));
    for q in queries {
        engine.register_query(q.clone()).expect("query registers");
    }
    engine
}

/// Build a sharded engine with an explicit topology: `front_pool == 0` is
/// the replicated topology (every shard re-runs Stage 1), `>= 1` the hybrid
/// parse-once topology with that many Stage-1 front workers.
pub fn sharded_engine_with_topology(
    config: EngineConfig,
    num_shards: usize,
    front_pool: usize,
    queries: &[mmqjp_xscl::XsclQuery],
) -> ShardedEngine {
    let mut engine = ShardedEngine::new(
        config
            .with_num_shards(num_shards)
            .with_front_pool(front_pool),
    );
    // Benign fault plan: see `sharded_engine_with_queries`.
    engine.set_fault_injector(FaultInjector::new(FaultPlan::none()));
    for q in queries {
        engine.register_query(q.clone()).expect("query registers");
    }
    engine
}

/// Run a stream through a single engine, canonically sorting each call's
/// matches the way [`ShardedEngine`] does — the result is byte-comparable
/// with [`run_stream_sharded`] on the same workload.
pub fn run_stream_sorted(engine: &mut MmqjpEngine, docs: Vec<Document>) -> Vec<MatchOutput> {
    let mut out = Vec::new();
    for doc in docs {
        let mut matches = engine.process_document(doc).expect("processing succeeds");
        sort_matches(&mut matches);
        out.extend(matches);
    }
    assert_audit_clean(engine);
    out
}

/// A comparable key for a match: `(query, left doc, right doc, sorted
/// (variable, doc, node) bindings)`.
pub type MatchKey = (u64, u64, u64, Vec<(String, u64, u32)>);

/// The [`MatchKey`] of one match. Output documents are excluded: Sequential
/// and MMQJP construct identical documents, but comparing them is redundant
/// given the bindings.
pub fn match_key(m: &MatchOutput) -> MatchKey {
    let mut bindings: Vec<(String, u64, u32)> = m
        .bindings
        .iter()
        .map(|b| (b.variable.clone(), b.doc.raw(), b.node.raw()))
        .collect();
    bindings.sort();
    (m.query.raw(), m.left_doc.raw(), m.right_doc.raw(), bindings)
}

/// Sorted match keys of a match list.
pub fn match_keys(matches: &[MatchOutput]) -> Vec<MatchKey> {
    let mut keys: Vec<_> = matches.iter().map(match_key).collect();
    keys.sort();
    keys
}
