//! Integration of the full pipeline from raw XML text to query matches:
//! XML parsing (`mmqjp-xml`) → tree-pattern evaluation (`mmqjp-xpath`) →
//! XSCL analysis (`mmqjp-xscl`) → template-shared join processing
//! (`mmqjp-core`).

use mmqjp_core::{EngineConfig, MmqjpEngine};
use mmqjp_relational::{Atom, ConjunctiveQuery, Database, Relation, Schema, Term, Value};
use mmqjp_xml::{parse_document, Timestamp};
use mmqjp_xpath::{parse_pattern, PatternMatcher};
use mmqjp_xscl::{normalize_query, parse_query, JoinGraph, ReducedGraph, TemplateCatalog};

const BOOK_XML: &str = r#"<?xml version="1.0"?>
<book isbn="0764579169">
  <author>Danny Ayers</author>
  <author>Andrew Watt</author>
  <title>Beginning RSS and Atom Programming</title>
  <category>Scripting &amp; Programming</category>
</book>"#;

const BLOG_XML: &str = r#"<blog>
  <author>Danny Ayers</author>
  <title>Beginning RSS and Atom Programming</title>
  <category>Book Announcement</category>
  <description>Just heard ...</description>
</blog>"#;

#[test]
fn raw_xml_to_matches() {
    let mut engine = MmqjpEngine::new(EngineConfig::mmqjp_view_mat());
    engine
        .register_query_text(
            "S//book->b[.//author->a][.//title->t] \
             FOLLOWED BY{a=a2 AND t=t2, 100} \
             S//blog->g[.//author->a2][.//title->t2]",
        )
        .unwrap();

    let book = parse_document(BOOK_XML)
        .unwrap()
        .with_timestamp(Timestamp(1));
    let blog = parse_document(BLOG_XML)
        .unwrap()
        .with_timestamp(Timestamp(2));

    assert!(engine.process_document(book).unwrap().is_empty());
    let matches = engine.process_document(blog).unwrap();
    assert_eq!(matches.len(), 1);
    let doc = matches[0].document.as_ref().unwrap();
    assert_eq!(doc.root().children().len(), 2);
}

#[test]
fn xpath_witnesses_feed_the_relational_layer() {
    // Manually drive Stage 1 and Stage 2 for one query, mirroring what the
    // engine does internally, to validate the crate boundaries.
    let doc = parse_document(BOOK_XML).unwrap();
    // Leave the nodes anonymous so canonical (definition-path) variable names
    // are assigned, as the engine does at registration time.
    let mut pattern = parse_pattern("S//book[.//author]").unwrap();
    pattern.assign_canonical_variables();
    let matcher = PatternMatcher::new(&pattern);
    let bindings = matcher.all_edge_bindings(&doc);
    assert_eq!(bindings.len(), 2); // two authors

    // Load the bindings into a relation and run a conjunctive query over it.
    let mut rel = Relation::new(Schema::new(["var1", "var2", "node1", "node2"]));
    for b in &bindings {
        rel.push_values(vec![
            Value::str(&b.ancestor_var),
            Value::str(&b.descendant_var),
            Value::from(b.ancestor.raw()),
            Value::from(b.descendant.raw()),
        ])
        .unwrap();
    }
    let mut db = Database::new();
    db.register("bindings", rel);
    let q = ConjunctiveQuery::new(["N"]).atom(Atom::new(
        "bindings",
        [
            Term::constant(Value::str("_S//book")),
            Term::constant(Value::str("_S//book//author")),
            Term::var("Root"),
            Term::var("N"),
        ],
    ));
    let result = db.evaluate(&q).unwrap();
    assert_eq!(result.len(), 2);
}

#[test]
fn xscl_analysis_pipeline_is_consistent_with_engine_registration() {
    let text = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";
    // Manual analysis path.
    let normalized = normalize_query(&parse_query(text).unwrap()).unwrap();
    let graph = JoinGraph::from_query(&normalized.query).unwrap();
    let reduced = ReducedGraph::from_join_graph(&graph);
    let mut catalog = TemplateCatalog::new();
    let membership = catalog.insert(&reduced);
    assert_eq!(catalog.template(membership.template).num_meta_vars(), 6);

    // Engine path: the engine must arrive at a template of the same shape.
    let mut engine = MmqjpEngine::new(EngineConfig::mmqjp());
    engine.register_query_text(text).unwrap();
    let engine_template = &engine.registry().templates().next().unwrap().template;
    assert_eq!(engine_template.num_meta_vars(), 6);
    assert_eq!(engine_template.num_left(), 3);
    assert!(mmqjp_xscl::template::isomorphism(&reduced, &engine_template.graph).is_some());
}

#[test]
fn malformed_inputs_are_rejected_across_layers() {
    // XML layer.
    assert!(parse_document("<a><b></a>").is_err());
    // XPath layer.
    assert!(parse_pattern("S//a[").is_err());
    // XSCL layer.
    assert!(parse_query("S//a->x FOLLOWED BY{, 10} S//b->y").is_err());
    // Engine layer: predicates over unbound variables.
    let mut engine = MmqjpEngine::new(EngineConfig::mmqjp());
    assert!(engine
        .register_query_text("S//a->x FOLLOWED BY{zz=y, 10} S//b->y")
        .is_err());
    // Registering a valid query still works afterwards.
    assert!(engine
        .register_query_text("S//a->x FOLLOWED BY{x=y, 10} S//b->y")
        .is_ok());
}

#[test]
fn attribute_values_participate_in_joins() {
    let mut engine = MmqjpEngine::new(EngineConfig::mmqjp());
    // Join the book's isbn attribute value against a blog post that quotes
    // the same isbn in its text.
    engine
        .register_query_text(
            "S//book->b[./@isbn->i] FOLLOWED BY{i=r, 100} S//blog->g[.//isbn_ref->r]",
        )
        .unwrap();
    let book = parse_document(BOOK_XML)
        .unwrap()
        .with_timestamp(Timestamp(1));
    let blog =
        parse_document("<blog><author>Someone</author><isbn_ref>0764579169</isbn_ref></blog>")
            .unwrap()
            .with_timestamp(Timestamp(2));
    assert!(engine.process_document(book).unwrap().is_empty());
    let out = engine.process_document(blog).unwrap();
    assert_eq!(out.len(), 1);
}
