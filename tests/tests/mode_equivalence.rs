//! The central correctness property of the reproduction: the three Stage-2
//! strategies (Sequential, MMQJP, MMQJP with view materialization) produce
//! exactly the same matches on the same workload — template sharing and view
//! materialization are pure optimizations — and the multi-core
//! `ShardedEngine` reproduces each of them byte for byte at every shard
//! count: Sharded ≡ Sequential ≡ MMQJP ≡ MMQJP+VM.

use mmqjp_core::{EngineConfig, MmqjpEngine, ProcessingMode};
use mmqjp_integration_tests::{
    all_modes, match_keys, run_stream, run_stream_sharded, run_stream_sorted,
    sharded_engine_with_queries, sharded_engine_with_topology, SHARD_COUNTS,
};
use mmqjp_workload::{
    ChurnConfig, ChurnWorkload, ComplexSchemaWorkload, FlatSchemaWorkload, RssQueryGenerator,
    RssStreamConfig, RssStreamGenerator,
};
use mmqjp_xml::{Document, Timestamp};
use mmqjp_xscl::XsclQuery;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run the same queries and documents through every mode (with an optional
/// config tweak) and assert the match sets coincide; additionally run every
/// mode through `ShardedEngine` at each [`SHARD_COUNTS`] entry and assert
/// the sharded output is byte-identical to the (canonically ordered)
/// single-engine output of the same mode. Returns the number of matches.
fn assert_modes_agree_with(
    queries: &[XsclQuery],
    docs: &[Document],
    tweak: impl Fn(EngineConfig) -> EngineConfig,
) -> usize {
    let mut reference: Option<Vec<_>> = None;
    let mut count = 0;
    for mode in all_modes() {
        let config = tweak(
            EngineConfig {
                mode,
                ..EngineConfig::default()
            }
            .with_retain_documents(false),
        );
        let mut engine = MmqjpEngine::new(config.clone());
        for q in queries {
            engine.register_query(q.clone()).expect("query registers");
        }
        let matches = run_stream_sorted(&mut engine, docs.to_vec());
        let keys = match_keys(&matches);
        count = keys.len();
        match &reference {
            None => reference = Some(keys),
            Some(r) => assert_eq!(
                r,
                &keys,
                "mode {mode:?} disagrees with {:?}",
                ProcessingMode::Sequential
            ),
        }
        for &num_shards in shard_counts_for(mode, docs.len()) {
            let mut sharded = sharded_engine_with_queries(config.clone(), num_shards, queries);
            let sharded_matches = run_stream_sharded(&mut sharded, docs.to_vec());
            assert_eq!(
                sharded_matches, matches,
                "Sharded({num_shards}) diverges from single-engine {mode:?}"
            );
        }
        // The hybrid topology (parse-once front stage + witness routing)
        // must reproduce the same bytes again at every tested combination.
        for &(front_pool, num_shards) in hybrid_combos_for(mode, docs.len()) {
            let mut hybrid =
                sharded_engine_with_topology(config.clone(), num_shards, front_pool, queries);
            let hybrid_matches = run_stream_sharded(&mut hybrid, docs.to_vec());
            assert_eq!(
                hybrid_matches, matches,
                "Hybrid(front {front_pool}, {num_shards} shards) diverges from \
                 single-engine {mode:?}"
            );
        }
    }
    count
}

/// Hybrid `(front_pool, num_shards)` combinations to sweep for a given inner
/// mode and stream length, budgeted like [`shard_counts_for`]. The full
/// front-pool × shard-count cross product is certified by the dedicated
/// sweep in `sharding.rs`; here each mode gets representative combinations
/// covering every front-pool size and shard count between them.
fn hybrid_combos_for(mode: ProcessingMode, num_docs: usize) -> &'static [(usize, usize)] {
    let light = num_docs <= 60;
    match mode {
        ProcessingMode::Sequential => {
            if light {
                &[(2, 4)]
            } else {
                &[]
            }
        }
        ProcessingMode::Mmqjp => {
            if light {
                &[(1, 1), (2, 4), (4, 7)]
            } else {
                &[(2, 2)]
            }
        }
        ProcessingMode::MmqjpViewMat => {
            if light {
                &[(1, 2), (4, 4), (2, 7)]
            } else {
                &[(2, 4)]
            }
        }
    }
}

/// Shard counts to sweep for a given inner mode and stream length.
///
/// Every sharded run costs roughly `num_shards ×` the per-shard fixed work
/// (Stage-1 patterns and templates are replicated into each shard holding
/// one of their queries), with no wall-clock win on the single-CPU CI
/// runners, so the sweep is budgeted: short streams exercise the full
/// [`SHARD_COUNTS`] sweep in every mode; long streams exercise small counts
/// in the cheap MMQJP modes (the large counts are certified by the short
/// scenarios, which share all the engine code). Sequential — whose per-query
/// evaluation dwarfs everything else — gets one representative count on
/// short streams only.
fn shard_counts_for(mode: ProcessingMode, num_docs: usize) -> &'static [usize] {
    let light = num_docs <= 60;
    match mode {
        ProcessingMode::Sequential => {
            if light {
                &[4]
            } else {
                &[]
            }
        }
        ProcessingMode::Mmqjp => {
            if light {
                &SHARD_COUNTS
            } else {
                &[1, 2]
            }
        }
        ProcessingMode::MmqjpViewMat => {
            if light {
                &SHARD_COUNTS
            } else {
                &[2, 4]
            }
        }
    }
}

/// [`assert_modes_agree_with`] with the default configuration.
fn assert_modes_agree(queries: &[XsclQuery], docs: &[Document]) -> usize {
    assert_modes_agree_with(queries, docs, |config| config)
}

/// A small document stream over the flat schema: several documents whose
/// leaf values overlap pairwise so joins fire between different positions.
fn flat_stream(workload: &FlatSchemaWorkload, docs: usize) -> Vec<Document> {
    (0..docs)
        .map(|i| {
            let mut d = workload.document(10 * (i as u64 + 1));
            // Rotate one leaf value so not every document matches every other
            // document on every leaf.
            let leaf = d.first_with_tag("leaf0").unwrap();
            d.set_text(leaf, format!("value-{}", i % 3));
            d
        })
        .collect()
}

#[test]
fn modes_agree_on_flat_schema_workload() {
    let workload = FlatSchemaWorkload::new(6, 0.8);
    let mut rng = StdRng::seed_from_u64(101);
    let queries = workload.generate_queries(150, &mut rng);
    let docs = flat_stream(&workload, 6);
    let matches = assert_modes_agree(&queries, &docs);
    assert!(matches > 0, "the workload must actually produce matches");
}

#[test]
fn modes_agree_on_complex_schema_workload() {
    let workload = ComplexSchemaWorkload::new(3, 3, 0.5);
    let mut rng = StdRng::seed_from_u64(202);
    let queries = workload.generate_queries(120, &mut rng);
    let docs: Vec<Document> = (0..5).map(|i| workload.document(5 * (i + 1))).collect();
    let matches = assert_modes_agree(&queries, &docs);
    assert!(matches > 0);
}

#[test]
fn modes_agree_on_rss_stream() {
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(303);
    let queries = generator.generate_queries(100, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items: 120,
        channels: 15,
        title_vocabulary: 25,
        description_vocabulary: 40,
        ..RssStreamConfig::default()
    })
    .documents();
    let matches = assert_modes_agree(&queries, &docs);
    assert!(matches > 0);
}

#[test]
fn modes_agree_with_finite_windows() {
    // Finite windows exercise the temporal filter of Algorithm 3.
    let generator = RssQueryGenerator::new(0.8).with_window(mmqjp_xscl::Window::Time(7));
    let mut rng = StdRng::seed_from_u64(404);
    let queries = generator.generate_queries(80, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items: 80,
        channels: 8,
        title_vocabulary: 10,
        description_vocabulary: 15,
        ..RssStreamConfig::default()
    })
    .documents();
    assert_modes_agree(&queries, &docs);
}

#[test]
fn modes_agree_with_state_pruning() {
    // Window-based pruning is per-shard: a shard prunes by the maximum window
    // of *its* query subset, which can be tighter than the global maximum
    // when windows are heterogeneous. Pruning only ever discards state no
    // resident query can reach, so the matches must still coincide. Mix three
    // window lengths to make the per-shard maxima genuinely differ.
    let mut rng = StdRng::seed_from_u64(909);
    let mut queries = Vec::new();
    for window in [5, 15, 40] {
        let generator = RssQueryGenerator::new(0.8).with_window(mmqjp_xscl::Window::Time(window));
        queries.extend(generator.generate_queries(25, &mut rng));
    }
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items: 60,
        channels: 6,
        title_vocabulary: 8,
        description_vocabulary: 12,
        ..RssStreamConfig::default()
    })
    .documents();
    assert_modes_agree_with(&queries, &docs, |config| {
        config.with_prune_state_by_window(true)
    });
}

#[test]
fn modes_agree_on_long_windowed_churn_stream() {
    // The sustained-operation scenario: a stream several times longer than
    // the largest window, with incremental bucketed expiry active the whole
    // time. Heterogeneous windows make per-shard expiry cutoffs differ, and
    // the bucketed drop retains rows slightly past their window (never less)
    // — the temporal filter must keep every mode and shard count
    // byte-identical through all of it.
    let workload = ChurnWorkload::new(ChurnConfig {
        items: 150,
        num_queries: 45,
        windows: vec![25, 60, 160],
        ..ChurnConfig::default()
    });
    let queries = workload.queries();
    let docs = workload.documents();
    let matches = assert_modes_agree_with(&queries, &docs, |config| {
        config.with_prune_state_by_window(true)
    });
    assert!(matches > 0, "the churn workload must produce matches");
}

#[test]
fn doc_retention_eviction_does_not_change_results() {
    // The doc_store/doc_timestamps leak fix evicts retention state even when
    // join-state pruning is off (the default); matches must be unaffected,
    // with and without an explicit retention cap at the window bound.
    let workload = ChurnWorkload::new(ChurnConfig {
        items: 90,
        num_queries: 30,
        windows: vec![30, 90],
        ..ChurnConfig::default()
    });
    let queries = workload.queries();
    let docs = workload.documents();
    let baseline = assert_modes_agree(&queries, &docs);
    let capped = assert_modes_agree_with(&queries, &docs, |config| {
        config.with_doc_retention_cap(Some(90))
    });
    assert_eq!(baseline, capped);
    assert!(baseline > 0);
}

#[test]
fn view_cache_capacity_does_not_change_results() {
    // A tiny LRU view cache forces constant eviction and recomputation; the
    // results must not change.
    let workload = FlatSchemaWorkload::new(5, 0.8);
    let mut rng = StdRng::seed_from_u64(505);
    let queries = workload.generate_queries(100, &mut rng);
    let docs = flat_stream(&workload, 8);

    let run = |capacity: Option<usize>| {
        let mut engine = MmqjpEngine::new(
            EngineConfig::mmqjp_view_mat()
                .with_view_cache_capacity(capacity)
                .with_retain_documents(false),
        );
        for q in &queries {
            engine.register_query(q.clone()).unwrap();
        }
        match_keys(&run_stream(&mut engine, docs.clone()))
    };
    let unbounded = run(None);
    let tiny = run(Some(2));
    assert_eq!(unbounded, tiny);
    assert!(!unbounded.is_empty());
}

#[test]
fn batched_processing_agrees_across_modes() {
    // process_batch trades intra-batch matches for throughput; all modes must
    // make the same trade and agree with each other.
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(606);
    let queries = generator.generate_queries(60, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items: 90,
        channels: 9,
        title_vocabulary: 12,
        description_vocabulary: 20,
        ..RssStreamConfig::default()
    })
    .documents();

    let mut reference: Option<Vec<_>> = None;
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        }
        .with_retain_documents(false);
        let mut engine = MmqjpEngine::new(config.clone());
        for q in &queries {
            engine.register_query(q.clone()).unwrap();
        }
        let mut matches = Vec::new();
        for chunk in docs.chunks(30) {
            let mut batch = engine.process_batch(chunk.to_vec()).unwrap();
            mmqjp_core::sort_matches(&mut batch);
            matches.extend(batch);
        }
        let keys = match_keys(&matches);
        match &reference {
            None => reference = Some(keys),
            Some(r) => assert_eq!(r, &keys, "mode {mode:?} disagrees"),
        }
        // Sharded batches must be byte-identical to the single engine's
        // (canonically ordered) batches.
        for &num_shards in shard_counts_for(mode, docs.len()) {
            let mut sharded = sharded_engine_with_queries(config.clone(), num_shards, &queries);
            let mut sharded_matches = Vec::new();
            for chunk in docs.chunks(30) {
                sharded_matches.extend(sharded.process_batch(chunk.to_vec()).unwrap());
            }
            assert_eq!(
                sharded_matches, matches,
                "Sharded({num_shards}) batched run diverges from {mode:?}"
            );
        }
        // The hybrid topology's pipelined entry point (Stage 1 of batch k+1
        // overlapping Stage 2 of batch k) must produce the same bytes,
        // batch-aligned.
        for &(front_pool, num_shards) in hybrid_combos_for(mode, docs.len()) {
            let mut hybrid =
                sharded_engine_with_topology(config.clone(), num_shards, front_pool, &queries);
            let batches: Vec<Vec<Document>> = docs.chunks(30).map(<[_]>::to_vec).collect();
            let hybrid_matches: Vec<_> = hybrid
                .process_batches(batches)
                .unwrap()
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(
                hybrid_matches, matches,
                "Hybrid(front {front_pool}, {num_shards} shards) pipelined run \
                 diverges from {mode:?}"
            );
        }
    }
}

#[test]
fn single_document_batches_equal_per_document_processing() {
    let workload = FlatSchemaWorkload::new(4, 0.8);
    let mut rng = StdRng::seed_from_u64(707);
    let queries = workload.generate_queries(60, &mut rng);
    let docs = flat_stream(&workload, 5);

    let mut per_doc = MmqjpEngine::new(EngineConfig::mmqjp().with_retain_documents(false));
    let mut batched = MmqjpEngine::new(EngineConfig::mmqjp().with_retain_documents(false));
    for q in &queries {
        per_doc.register_query(q.clone()).unwrap();
        batched.register_query(q.clone()).unwrap();
    }
    let a = match_keys(&run_stream(&mut per_doc, docs.clone()));
    let mut b_matches = Vec::new();
    for d in docs {
        b_matches.extend(batched.process_batch(vec![d]).unwrap());
    }
    let b = match_keys(&b_matches);
    assert_eq!(a, b);
}

#[test]
fn timestamps_default_to_arrival_order() {
    // Documents without explicit timestamps get sequence-number timestamps,
    // so FOLLOWED BY still behaves deterministically.
    let workload = FlatSchemaWorkload::new(4, 0.8);
    let mut rng = StdRng::seed_from_u64(808);
    let queries = workload.generate_queries(40, &mut rng);
    let docs: Vec<Document> = (0..4)
        .map(|_| workload.document(0).with_timestamp(Timestamp(0)))
        .collect();
    assert_modes_agree(&queries, &docs);
}
