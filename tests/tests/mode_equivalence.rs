//! The central correctness property of the reproduction: the three Stage-2
//! strategies (Sequential, MMQJP, MMQJP with view materialization) produce
//! exactly the same matches on the same workload — template sharing and view
//! materialization are pure optimizations.

use mmqjp_core::{EngineConfig, MmqjpEngine, ProcessingMode};
use mmqjp_integration_tests::{all_modes, match_keys, run_stream};
use mmqjp_workload::{
    ComplexSchemaWorkload, FlatSchemaWorkload, RssQueryGenerator, RssStreamConfig,
    RssStreamGenerator,
};
use mmqjp_xml::{Document, Timestamp};
use mmqjp_xscl::XsclQuery;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run the same queries and documents through every mode and assert the match
/// sets coincide. Returns the number of matches (for sanity assertions).
fn assert_modes_agree(queries: &[XsclQuery], docs: &[Document]) -> usize {
    let mut reference: Option<Vec<_>> = None;
    let mut count = 0;
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        }
        .with_retain_documents(false);
        let mut engine = MmqjpEngine::new(config);
        for q in queries {
            engine.register_query(q.clone()).expect("query registers");
        }
        let matches = run_stream(&mut engine, docs.to_vec());
        let keys = match_keys(&matches);
        count = keys.len();
        match &reference {
            None => reference = Some(keys),
            Some(r) => assert_eq!(
                r,
                &keys,
                "mode {mode:?} disagrees with {:?}",
                ProcessingMode::Sequential
            ),
        }
    }
    count
}

/// A small document stream over the flat schema: several documents whose
/// leaf values overlap pairwise so joins fire between different positions.
fn flat_stream(workload: &FlatSchemaWorkload, docs: usize) -> Vec<Document> {
    (0..docs)
        .map(|i| {
            let mut d = workload.document(10 * (i as u64 + 1));
            // Rotate one leaf value so not every document matches every other
            // document on every leaf.
            let leaf = d.first_with_tag("leaf0").unwrap();
            d.set_text(leaf, format!("value-{}", i % 3));
            d
        })
        .collect()
}

#[test]
fn modes_agree_on_flat_schema_workload() {
    let workload = FlatSchemaWorkload::new(6, 0.8);
    let mut rng = StdRng::seed_from_u64(101);
    let queries = workload.generate_queries(150, &mut rng);
    let docs = flat_stream(&workload, 6);
    let matches = assert_modes_agree(&queries, &docs);
    assert!(matches > 0, "the workload must actually produce matches");
}

#[test]
fn modes_agree_on_complex_schema_workload() {
    let workload = ComplexSchemaWorkload::new(3, 3, 0.5);
    let mut rng = StdRng::seed_from_u64(202);
    let queries = workload.generate_queries(120, &mut rng);
    let docs: Vec<Document> = (0..5).map(|i| workload.document(5 * (i + 1))).collect();
    let matches = assert_modes_agree(&queries, &docs);
    assert!(matches > 0);
}

#[test]
fn modes_agree_on_rss_stream() {
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(303);
    let queries = generator.generate_queries(100, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items: 120,
        channels: 15,
        title_vocabulary: 25,
        description_vocabulary: 40,
        ..RssStreamConfig::default()
    })
    .documents();
    let matches = assert_modes_agree(&queries, &docs);
    assert!(matches > 0);
}

#[test]
fn modes_agree_with_finite_windows() {
    // Finite windows exercise the temporal filter of Algorithm 3.
    let generator = RssQueryGenerator::new(0.8).with_window(mmqjp_xscl::Window::Time(7));
    let mut rng = StdRng::seed_from_u64(404);
    let queries = generator.generate_queries(80, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items: 80,
        channels: 8,
        title_vocabulary: 10,
        description_vocabulary: 15,
        ..RssStreamConfig::default()
    })
    .documents();
    assert_modes_agree(&queries, &docs);
}

#[test]
fn view_cache_capacity_does_not_change_results() {
    // A tiny LRU view cache forces constant eviction and recomputation; the
    // results must not change.
    let workload = FlatSchemaWorkload::new(5, 0.8);
    let mut rng = StdRng::seed_from_u64(505);
    let queries = workload.generate_queries(100, &mut rng);
    let docs = flat_stream(&workload, 8);

    let run = |capacity: Option<usize>| {
        let mut engine = MmqjpEngine::new(
            EngineConfig::mmqjp_view_mat()
                .with_view_cache_capacity(capacity)
                .with_retain_documents(false),
        );
        for q in &queries {
            engine.register_query(q.clone()).unwrap();
        }
        match_keys(&run_stream(&mut engine, docs.clone()))
    };
    let unbounded = run(None);
    let tiny = run(Some(2));
    assert_eq!(unbounded, tiny);
    assert!(!unbounded.is_empty());
}

#[test]
fn batched_processing_agrees_across_modes() {
    // process_batch trades intra-batch matches for throughput; all modes must
    // make the same trade and agree with each other.
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(606);
    let queries = generator.generate_queries(60, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items: 90,
        channels: 9,
        title_vocabulary: 12,
        description_vocabulary: 20,
        ..RssStreamConfig::default()
    })
    .documents();

    let mut reference: Option<Vec<_>> = None;
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        }
        .with_retain_documents(false);
        let mut engine = MmqjpEngine::new(config);
        for q in &queries {
            engine.register_query(q.clone()).unwrap();
        }
        let mut matches = Vec::new();
        for chunk in docs.chunks(30) {
            matches.extend(engine.process_batch(chunk.to_vec()).unwrap());
        }
        let keys = match_keys(&matches);
        match &reference {
            None => reference = Some(keys),
            Some(r) => assert_eq!(r, &keys, "mode {mode:?} disagrees"),
        }
    }
}

#[test]
fn single_document_batches_equal_per_document_processing() {
    let workload = FlatSchemaWorkload::new(4, 0.8);
    let mut rng = StdRng::seed_from_u64(707);
    let queries = workload.generate_queries(60, &mut rng);
    let docs = flat_stream(&workload, 5);

    let mut per_doc = MmqjpEngine::new(EngineConfig::mmqjp().with_retain_documents(false));
    let mut batched = MmqjpEngine::new(EngineConfig::mmqjp().with_retain_documents(false));
    for q in &queries {
        per_doc.register_query(q.clone()).unwrap();
        batched.register_query(q.clone()).unwrap();
    }
    let a = match_keys(&run_stream(&mut per_doc, docs.clone()));
    let mut b_matches = Vec::new();
    for d in docs {
        b_matches.extend(batched.process_batch(vec![d]).unwrap());
    }
    let b = match_keys(&b_matches);
    assert_eq!(a, b);
}

#[test]
fn timestamps_default_to_arrival_order() {
    // Documents without explicit timestamps get sequence-number timestamps,
    // so FOLLOWED BY still behaves deterministically.
    let workload = FlatSchemaWorkload::new(4, 0.8);
    let mut rng = StdRng::seed_from_u64(808);
    let queries = workload.generate_queries(40, &mut rng);
    let docs: Vec<Document> = (0..4)
        .map(|_| workload.document(0).with_timestamp(Timestamp(0)))
        .collect();
    assert_modes_agree(&queries, &docs);
}
