//! Long-stream state boundedness: under continuous windowed ingestion the
//! engine's resident state (join-state rows, retained documents and
//! timestamps) plateaus instead of growing with stream length, in every
//! processing mode and with `retain_documents = true` — and incremental
//! window expiry never changes results: an engine that expired state
//! incrementally over a long stream produces exactly the matches of a fresh
//! engine fed only the in-window suffix of the stream.

use mmqjp_core::{EngineConfig, MatchOutput, MmqjpEngine, ProcessingMode, ShardedEngine};
use mmqjp_integration_tests::all_modes;
use mmqjp_workload::{ChurnConfig, ChurnWorkload};
use mmqjp_xml::{Document, Timestamp};
use proptest::prelude::*;

/// The churn workload used by the plateau tests: 250 items spanning 500
/// time units against 30/80/200 windows, so every window fills by
/// mid-stream and churns for the rest.
fn workload() -> ChurnWorkload {
    ChurnWorkload::new(ChurnConfig {
        items: 250,
        num_queries: 36,
        windows: vec![30, 80, 200],
        ..ChurnConfig::default()
    })
}

fn engine_for(mode: ProcessingMode, workload: &ChurnWorkload) -> MmqjpEngine {
    let config = EngineConfig {
        mode,
        ..EngineConfig::default()
    }
    .with_prune_state_by_window(true)
    .with_retain_documents(true);
    let mut engine = MmqjpEngine::new(config);
    for q in workload.queries() {
        engine.register_query(q).unwrap();
    }
    engine
}

#[test]
fn state_and_doc_store_plateau_in_every_mode() {
    let workload = workload();
    let docs = workload.documents();
    for mode in all_modes() {
        let mut engine = engine_for(mode, &workload);
        // Once the largest window (200 time units = 100 items) has filled,
        // resident state must stop growing. Track the resident maxima over
        // the second half of the stream and compare against the half-way
        // snapshot.
        let mut matches = 0usize;
        let mut at_half = None;
        let mut second_half_max_rows = 0usize;
        let mut second_half_max_docs = 0usize;
        for (i, doc) in docs.iter().enumerate() {
            matches += engine.process_document(doc.clone()).unwrap().len();
            let stats = engine.stats();
            if i + 1 == docs.len() / 2 {
                at_half = Some(stats);
            } else if i + 1 > docs.len() / 2 {
                second_half_max_rows =
                    second_half_max_rows.max(stats.rdoc_tuples + stats.rbin_tuples);
                second_half_max_docs = second_half_max_docs.max(stats.docs_retained);
            }
        }
        let at_half = at_half.expect("stream is longer than 2 documents");
        let stats = engine.stats();
        assert!(matches > 0, "{mode:?}: the workload must produce matches");
        let half_rows = at_half.rdoc_tuples + at_half.rbin_tuples;
        assert!(
            second_half_max_rows <= half_rows + half_rows / 4,
            "{mode:?}: join state must plateau: {half_rows} rows at half, \
             {second_half_max_rows} max afterwards"
        );
        assert!(
            second_half_max_docs <= at_half.docs_retained + at_half.docs_retained / 4,
            "{mode:?}: doc store must plateau: {} at half, {} max afterwards",
            at_half.docs_retained,
            second_half_max_docs
        );
        // Every processed document is accounted for: still resident or
        // counted as evicted.
        assert_eq!(stats.docs_retained + stats.docs_evicted, docs.len());
        assert!(stats.state_rows_evicted > 0, "{mode:?}: state must churn");
        assert!(stats.state_buckets_evicted > 0);
    }
}

#[test]
fn sharded_engine_state_is_bounded_too() {
    let workload = workload();
    let docs = workload.documents();
    let config = EngineConfig::mmqjp()
        .with_prune_state_by_window(true)
        .with_retain_documents(true)
        .with_num_shards(2);
    let mut sharded = ShardedEngine::new(config);
    for q in workload.queries() {
        sharded.register_query(q).unwrap();
    }
    let mut single = engine_for(ProcessingMode::Mmqjp, &workload);
    for doc in &docs {
        let mut expected = single.process_document(doc.clone()).unwrap();
        mmqjp_core::sort_matches(&mut expected);
        let got = sharded.process_batch(vec![doc.clone()]).unwrap();
        assert_eq!(got, expected, "sharded output diverges under churn");
    }
    // Every shard's retention is bounded by the windows (a 200-time-unit
    // span is 100 items, plus up to one bucket of eviction lag), not by the
    // stream length.
    for (i, stats) in sharded.shard_stats().unwrap().into_iter().enumerate() {
        assert!(
            stats.docs_retained < docs.len() * 2 / 3,
            "shard {i} retains {} of {} documents",
            stats.docs_retained,
            docs.len()
        );
        assert_eq!(stats.docs_retained + stats.docs_evicted, docs.len());
    }
}

// ---------------------------------------------------------------------------
// Subscription churn: resident state plateaus with a stable live population
// ---------------------------------------------------------------------------

#[test]
fn subscription_churn_state_plateaus_over_10k_cycles() {
    // 10 000 subscribe/unsubscribe cycles with a stable live population
    // (see POPULATION/DOC_EVERY below), documents interleaved throughout.
    // Resident state — query/template/pattern populations, join-state
    // buckets and retained documents — must stay flat: the engine of a
    // long-running deployment sheds dead subscriptions instead of
    // accumulating them.
    // A pool of 16 query shapes over a 12-strong live population: at any
    // moment some shapes have no live subscriber, so churn keeps dropping
    // and re-creating patterns instead of only shrinking shared ones. Shape
    // 0 is structurally unique (a two-value-join template of its own), so
    // its template is retired and re-created once per pool rotation.
    let pool: Vec<mmqjp_xscl::XsclQuery> = (0..16)
        .map(|i| {
            let text = if i == 0 {
                "S//item->lr[.//f0->l0][.//f1->l1] FOLLOWED BY{l0=r0 AND l1=r1, 30} \
                 S//item->rr[.//f0->r0][.//f1->r1]"
                    .to_owned()
            } else {
                format!(
                    "S//item->lr[.//f{i}->l0] FOLLOWED BY{{l0=r0, {}}} S//item->rr[.//f{i}->r0]",
                    30 + 10 * (i % 3) as u64
                )
            };
            mmqjp_xscl::parse_query(&text).unwrap()
        })
        .collect();
    let doc = |i: u64| {
        let mut b = mmqjp_xml::DocumentBuilder::new("item");
        for tag in 0..6 {
            b.child_text(format!("f{tag}"), "v0");
        }
        b.finish().with_timestamp(Timestamp(1 + i * 5))
    };

    const POPULATION: usize = 12;
    const CYCLES: usize = 10_000;
    const DOC_EVERY: usize = 8;
    let mut engine = MmqjpEngine::new(
        EngineConfig::mmqjp()
            .with_prune_state_by_window(true)
            .with_retain_documents(true),
    );
    let mut live: std::collections::VecDeque<mmqjp_core::QueryId> =
        std::collections::VecDeque::new();
    for q in pool.iter().cycle().take(POPULATION) {
        live.push_back(engine.register_query(q.clone()).unwrap());
    }

    let mut matches = 0usize;
    let mut docs_sent = 0u64;
    let mut warm = None;
    let mut later_max = mmqjp_core::EngineStats::default();
    for cycle in 0..CYCLES {
        // One churn cycle: a new subscription arrives, the oldest departs —
        // the live population stays at POPULATION throughout.
        live.push_back(
            engine
                .register_query(pool[cycle % pool.len()].clone())
                .unwrap(),
        );
        let oldest = live.pop_front().expect("population is non-empty");
        engine.unregister_query(oldest).unwrap();
        if cycle % DOC_EVERY == 0 {
            docs_sent += 1;
            matches += engine.process_document(doc(docs_sent)).unwrap().len();
        }
        if cycle == CYCLES / 10 {
            warm = Some(engine.stats());
        } else if cycle > CYCLES / 10 && cycle % 25 == 0 {
            let stats = engine.stats();
            later_max.queries_registered =
                later_max.queries_registered.max(stats.queries_registered);
            later_max.templates = later_max.templates.max(stats.templates);
            later_max.distinct_patterns = later_max.distinct_patterns.max(stats.distinct_patterns);
            later_max.state_buckets = later_max.state_buckets.max(stats.state_buckets);
            later_max.docs_retained = later_max.docs_retained.max(stats.docs_retained);
        }
    }
    let warm = warm.expect("warmup snapshot taken");
    assert!(matches > 0, "the stream must keep matching through churn");
    let stats = engine.stats();
    assert_eq!(
        stats.queries_registered, POPULATION,
        "live population is stable"
    );
    assert_eq!(stats.queries_unregistered, CYCLES);
    // Populations plateau: the post-warmup maxima never exceed small
    // constants tied to the pool, not to the cycle count.
    assert_eq!(later_max.queries_registered, POPULATION);
    assert!(
        later_max.templates <= warm.templates + 1,
        "templates grew: {} -> {}",
        warm.templates,
        later_max.templates
    );
    assert!(
        later_max.distinct_patterns <= warm.distinct_patterns + 2,
        "patterns grew: {} -> {}",
        warm.distinct_patterns,
        later_max.distinct_patterns
    );
    assert!(
        later_max.state_buckets <= warm.state_buckets * 2 + 8,
        "state buckets grew: {} -> {}",
        warm.state_buckets,
        later_max.state_buckets
    );
    assert!(
        later_max.docs_retained <= warm.docs_retained * 2 + 8,
        "doc store grew: {} -> {}",
        warm.docs_retained,
        later_max.docs_retained
    );
    // Retirement kept pace with churn: patterns and templates were dropped
    // throughout, not leaked.
    assert!(stats.patterns_dropped > 0);
    assert!(stats.templates_retired > 0);
}

// ---------------------------------------------------------------------------
// Incremental expiry == fresh engine on the in-window suffix
// ---------------------------------------------------------------------------

/// A flat document over a tiny vocabulary, so joins fire often.
fn doc_from(leaves: &[(usize, usize)]) -> Document {
    let mut b = mmqjp_xml::DocumentBuilder::new("item");
    for (tag, value) in leaves {
        b.child_text(format!("f{tag}"), format!("v{value}"));
    }
    b.finish()
}

/// A self-join query over the flat vocabulary with the given window.
fn query_with_window(pairs: &[(usize, usize)], window: u64) -> String {
    let mut left = String::new();
    let mut right = String::new();
    let mut joins = Vec::new();
    for (i, (lf, rf)) in pairs.iter().enumerate() {
        left.push_str(&format!("[.//f{lf}->l{i}]"));
        right.push_str(&format!("[.//f{rf}->r{i}]"));
        joins.push(format!("l{i}=r{i}"));
    }
    format!(
        "S//item->lr{left} FOLLOWED BY{{{}, {window}}} S//item->rr{right}",
        joins.join(" AND ")
    )
}

/// A match keyed by timestamps: `(query, left ts, right ts, bindings)`.
type TsKey = (u64, u64, u64, Vec<(String, u64, u32)>);

/// Matches keyed by timestamps instead of document ids, so runs over
/// different document subsets are comparable.
fn ts_keys(matches: &[MatchOutput], ts_of: impl Fn(u64) -> u64) -> Vec<TsKey> {
    let mut keys: Vec<_> = matches
        .iter()
        .map(|m| {
            let mut bindings: Vec<(String, u64, u32)> = m
                .bindings
                .iter()
                .map(|b| (b.variable.clone(), ts_of(b.doc.raw()), b.node.raw()))
                .collect();
            bindings.sort();
            (
                m.query.raw(),
                ts_of(m.left_doc.raw()),
                ts_of(m.right_doc.raw()),
                bindings,
            )
        })
        .collect();
    keys.sort();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Feed a long in-order stream through an engine with incremental
    /// window expiry; the matches of the final document must equal those of
    /// a fresh engine that only ever saw the documents still inside the
    /// final document's window.
    #[test]
    fn incremental_expiry_equals_fresh_engine_on_window_suffix(
        doc_leaves in prop::collection::vec(
            prop::collection::vec((0usize..4, 0usize..3), 1..5), 3..14),
        join_pairs in prop::collection::vec((0usize..4, 0usize..4), 1..3),
        window_steps in 1u64..8,
        mode_index in 0usize..3,
    ) {
        // Timestamps advance by 10 per document; the window covers
        // `window_steps` documents back.
        let window = window_steps * 10;
        let docs: Vec<Document> = doc_leaves.iter().map(|l| doc_from(l)).collect();
        let timestamps: Vec<u64> = (0..docs.len()).map(|i| (i as u64 + 1) * 10).collect();
        let query = query_with_window(&join_pairs, window);
        let mode = [
            ProcessingMode::Sequential,
            ProcessingMode::Mmqjp,
            ProcessingMode::MmqjpViewMat,
        ][mode_index];
        let config = EngineConfig { mode, ..EngineConfig::default() }
            .with_prune_state_by_window(true)
            .with_retain_documents(false);

        // Incremental: the whole stream, expiring as it goes.
        let mut incremental = MmqjpEngine::new(config.clone());
        incremental.register_query_text(&query).unwrap();
        let mut last = Vec::new();
        for (doc, &ts) in docs.iter().zip(&timestamps) {
            last = incremental
                .process_document(doc.clone().with_timestamp(Timestamp(ts)))
                .unwrap();
        }
        let inc_ts = |id: u64| timestamps[(id - 1) as usize];
        let incremental_keys = ts_keys(&last, inc_ts);

        // Fresh: only the documents inside the last document's window.
        let last_ts = *timestamps.last().unwrap();
        let suffix_start = docs.len()
            - timestamps.iter().filter(|&&ts| last_ts - ts <= window).count();
        let mut fresh = MmqjpEngine::new(config);
        fresh.register_query_text(&query).unwrap();
        let mut fresh_last = Vec::new();
        for (doc, &ts) in docs[suffix_start..].iter().zip(&timestamps[suffix_start..]) {
            fresh_last = fresh
                .process_document(doc.clone().with_timestamp(Timestamp(ts)))
                .unwrap();
        }
        let fresh_ts = |id: u64| timestamps[suffix_start + (id - 1) as usize];
        let fresh_keys = ts_keys(&fresh_last, fresh_ts);

        prop_assert_eq!(
            incremental_keys,
            fresh_keys,
            "{:?}: incremental expiry changed the final document's matches",
            mode
        );
    }
}
