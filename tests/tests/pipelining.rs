//! Stress tests for the hybrid topology's Stage-1 / Stage-2 pipeline
//! boundary: many tiny batches racing through the depth-1 pipeline, skewed
//! and degenerate shard populations, and error handling mid-stream. The
//! invariants are: no batch is reordered, dropped, or duplicated; the
//! pipelined entry point is byte-equivalent to batch-at-a-time processing;
//! and an error leaves the engine synchronized and usable.

use mmqjp_core::{CoreError, EngineConfig, MatchOutput, ShardedEngine};
use mmqjp_integration_tests::{assert_audit_clean_sharded, sharded_engine_with_topology, Q1};
use mmqjp_workload::{RssQueryGenerator, RssStreamConfig, RssStreamGenerator};
use mmqjp_xml::{Document, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rss_workload(
    seed: u64,
    queries: usize,
    items: usize,
) -> (Vec<mmqjp_xscl::XsclQuery>, Vec<Document>) {
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let qs = generator.generate_queries(queries, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items,
        channels: 8,
        title_vocabulary: 10,
        description_vocabulary: 15,
        ..RssStreamConfig::default()
    })
    .documents();
    (qs, docs)
}

/// Batch-at-a-time reference on an identically-configured hybrid engine:
/// `process_batch` never overlaps stages, so it pins the expected bytes and
/// batch alignment for `process_batches`.
fn batchwise_reference(
    config: &EngineConfig,
    queries: &[mmqjp_xscl::XsclQuery],
    batches: &[Vec<Document>],
) -> Vec<Vec<MatchOutput>> {
    let mut engine = sharded_engine_with_topology(config.clone(), config.num_shards, 2, queries);
    batches
        .iter()
        .map(|b| engine.process_batch(b.clone()).unwrap())
        .collect()
}

/// Many tiny batches: with one document per batch the pipeline turns over
/// on every call, maximizing Stage-1/Stage-2 overlap windows. Nothing may
/// be reordered, dropped, or duplicated.
#[test]
fn many_tiny_batches_keep_order_and_lose_nothing() {
    let (queries, docs) = rss_workload(51, 40, 60);
    let config = EngineConfig::mmqjp()
        .with_retain_documents(false)
        .with_num_shards(3);
    let batches: Vec<Vec<Document>> = docs.chunks(1).map(<[_]>::to_vec).collect();
    let expected = batchwise_reference(&config, &queries, &batches);
    assert!(
        expected.iter().any(|b| !b.is_empty()),
        "the workload must produce matches"
    );

    let mut engine = sharded_engine_with_topology(config, 3, 2, &queries);
    let results = engine.process_batches(batches).unwrap();
    assert_eq!(results.len(), expected.len(), "a batch was dropped");
    assert_eq!(results, expected, "batches reordered or corrupted");
    // Total match accounting survives the pipeline.
    assert_eq!(
        engine.stats().unwrap().results_emitted,
        expected.iter().map(Vec::len).sum::<usize>()
    );
    assert_audit_clean_sharded(&engine);
}

/// One shard: the pipeline degenerates to a two-thread producer/consumer
/// pair; the boundary must still hand over every batch exactly once.
#[test]
fn one_shard_pipeline_is_equivalent() {
    let (queries, docs) = rss_workload(52, 25, 40);
    let config = EngineConfig::mmqjp_view_mat()
        .with_retain_documents(false)
        .with_num_shards(1);
    let batches: Vec<Vec<Document>> = docs.chunks(3).map(<[_]>::to_vec).collect();
    let expected = batchwise_reference(&config, &queries, &batches);
    let mut engine = sharded_engine_with_topology(config, 1, 1, &queries);
    assert_eq!(engine.process_batches(batches).unwrap(), expected);
    assert_audit_clean_sharded(&engine);
}

/// Zero queries: batches must still flow through the pipeline (the shards
/// get ledger-only witness batches) without deadlocking or dropping a
/// batch, and every result is empty.
#[test]
fn zero_query_pipeline_flows_empty_batches() {
    let (_, docs) = rss_workload(53, 1, 30);
    let config = EngineConfig::mmqjp()
        .with_retain_documents(false)
        .with_num_shards(4);
    let mut engine = sharded_engine_with_topology(config, 4, 2, &[]);
    let batches: Vec<Vec<Document>> = docs.chunks(1).map(<[_]>::to_vec).collect();
    let num_batches = batches.len();
    let results = engine.process_batches(batches).unwrap();
    assert_eq!(results.len(), num_batches);
    assert!(results.iter().all(Vec::is_empty));
    let stats = engine.stats().unwrap();
    assert_eq!(stats.documents_processed, 30);
    assert_eq!(stats.witnesses_routed, 0);
    assert_audit_clean_sharded(&engine);
}

/// Empty batches interleaved with real ones: each must land at the right
/// position in the result vector (an empty batch settles the pipeline, so
/// misalignment here would betray an off-by-one at the boundary).
#[test]
fn interleaved_empty_batches_stay_aligned() {
    let (queries, docs) = rss_workload(54, 30, 20);
    let config = EngineConfig::mmqjp()
        .with_retain_documents(false)
        .with_num_shards(2);
    let mut batches: Vec<Vec<Document>> = Vec::new();
    for (i, chunk) in docs.chunks(2).enumerate() {
        if i % 3 == 0 {
            batches.push(Vec::new());
        }
        batches.push(chunk.to_vec());
    }
    batches.push(Vec::new());
    let expected = batchwise_reference(&config, &queries, &batches);
    let mut engine = sharded_engine_with_topology(config, 2, 2, &queries);
    let results = engine.process_batches(batches).unwrap();
    assert_eq!(results, expected);
    assert_audit_clean_sharded(&engine);
}

/// Slow-shard scenario: a shard count far above the query count leaves most
/// shards idle while one or two do all the Stage-2 work — the collector
/// must wait for the slow shard on every batch without deadlock or
/// reordering, whatever the front pool size.
#[test]
fn skewed_shard_load_does_not_reorder_or_deadlock() {
    let (queries, docs) = rss_workload(55, 3, 40);
    let config = EngineConfig::mmqjp()
        .with_retain_documents(false)
        .with_num_shards(7);
    let batches: Vec<Vec<Document>> = docs.chunks(2).map(<[_]>::to_vec).collect();
    let expected = batchwise_reference(&config, &queries, &batches);
    for front_pool in [1, 4] {
        let mut engine = sharded_engine_with_topology(config.clone(), 7, front_pool, &queries);
        // Most shards hold no queries at all.
        assert!(
            engine
                .queries_per_shard()
                .iter()
                .filter(|&&n| n == 0)
                .count()
                >= 4
        );
        assert_eq!(
            engine.process_batches(batches.clone()).unwrap(),
            expected,
            "front pool {front_pool}"
        );
        assert_audit_clean_sharded(&engine);
    }
}

/// An out-of-order document rejected mid-stream: `process_batches` returns
/// the error, the in-flight batch is drained (not leaked), and the engine
/// continues exactly like a single engine after a rejected batch.
#[test]
fn error_mid_stream_leaves_the_pipeline_synchronized() {
    let mut config = EngineConfig::mmqjp().with_num_shards(3);
    config.enforce_in_order = true;
    let mut engine = ShardedEngine::new(config.with_front_pool(2));
    engine.register_query_text(Q1).unwrap();

    let d1 = mmqjp_integration_tests::d1();
    let d2 = mmqjp_integration_tests::d2();
    let err = engine
        .process_batches(vec![
            vec![d1.clone().with_timestamp(Timestamp(100))],
            vec![d2.clone().with_timestamp(Timestamp(50))], // rejected
            vec![d2.clone().with_timestamp(Timestamp(150))], // never reached
        ])
        .unwrap_err();
    assert!(matches!(
        err,
        CoreError::OutOfOrderDocument {
            timestamp: 50,
            newest: 100
        }
    ));

    // The pipeline drained: a later in-order batch still matches against
    // the state from the first batch.
    let out = engine
        .process_batch(vec![d2.with_timestamp(Timestamp(150))])
        .unwrap();
    assert_eq!(out.len(), 1);
    // Even after a rejected batch, the invariant audit stays clean.
    assert_audit_clean_sharded(&engine);
}
