//! Deterministic chaos harness for the self-healing sharded pipeline.
//!
//! The central property is differential: under *any* seeded fault schedule —
//! worker panics, dropped replies, front-worker deaths, corrupted document
//! bytes, out-of-order timestamps — a [`FaultPolicy::Quarantine`] engine must
//! produce byte-identical output to a fresh, fault-free engine fed only the
//! surviving documents, and its invariant audit must come back clean after
//! every recovery. Alongside the differential sweep there are targeted tests
//! for each policy: FailFast containment (a panic becomes a typed error, not
//! a hang), Degrade (dead shards go dark, the rest keep serving, a manual
//! respawn restores full service), and the pipelined entry point's
//! checkpoint/rollback of a staged-but-never-dispatched batch.
//!
//! The three default seeds are fixed so CI failures replay exactly; override
//! them with `MMQJP_CHAOS_SEEDS=1,2,3` to widen the sweep.

use std::collections::HashSet;
use std::time::Duration;

use mmqjp_core::{
    corrupt_bytes, CoreError, EngineConfig, FaultInjector, FaultKind, FaultPlan, FaultPolicy,
    MatchOutput, QuarantineRecord, ShardedEngine,
};
use mmqjp_integration_tests::{
    assert_audit_clean_sharded, match_keys, sharded_engine_with_topology,
};
use mmqjp_workload::{RssQueryGenerator, RssStreamConfig, RssStreamGenerator};
use mmqjp_xml::{parse_document, parse_document_streaming, serialize, Document, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fixed seeds the CI chaos job runs. `MMQJP_CHAOS_SEEDS` (comma-
/// separated) overrides them for wider local sweeps.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("MMQJP_CHAOS_SEEDS") {
        Ok(spec) => spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        Err(_) => vec![11, 29, 47],
    }
}

fn rss_workload(
    seed: u64,
    queries: usize,
    items: usize,
) -> (Vec<mmqjp_xscl::XsclQuery>, Vec<Document>) {
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let qs = generator.generate_queries(queries, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items,
        channels: 8,
        title_vocabulary: 10,
        description_vocabulary: 15,
        ..RssStreamConfig::default()
    })
    .documents();
    (qs, docs)
}

/// Build an engine under the given fault policy with the plan installed
/// before any queries register (floors start at zero, like the reference).
fn chaos_engine(
    config: EngineConfig,
    num_shards: usize,
    front_pool: usize,
    policy: FaultPolicy,
    plan: FaultPlan,
    queries: &[mmqjp_xscl::XsclQuery],
) -> ShardedEngine {
    let mut engine = ShardedEngine::new(
        config
            .with_num_shards(num_shards)
            .with_front_pool(front_pool)
            .with_fault_policy(policy),
    );
    engine.set_fault_injector(FaultInjector::new(plan));
    for q in queries {
        engine.register_query(q.clone()).expect("query registers");
    }
    engine
}

/// Re-parse a corrupted byte blob with *both* parsers. They must agree on
/// accept/reject and neither may panic (the malformed-input contract); a
/// blob both accept re-enters the stream, one both reject leaves it. Bytes
/// that are not even UTF-8 never reach either parser.
fn reparse_if_agreed(bytes: &[u8]) -> Option<Document> {
    let text = String::from_utf8(bytes.to_vec()).ok()?;
    let dom = parse_document(&text);
    let streaming = parse_document_streaming(&text);
    assert_eq!(
        dom.is_ok(),
        streaming.is_ok(),
        "DOM and streaming parsers disagree on corrupt input:\n  dom: {dom:?}\n  streaming: {streaming:?}\n  input: {text:?}"
    );
    dom.ok()
}

/// Apply the plan's *document-content* faults to the input stream — the
/// engine only delivers worker-directed faults; mutating the bytes it is fed
/// is the harness's job, identically for the engine under test and (via the
/// quarantine records) the reference.
fn apply_document_faults(
    plan: &FaultPlan,
    batches: &[Vec<Document>],
    seed: u64,
) -> Vec<Vec<Document>> {
    batches
        .iter()
        .enumerate()
        .map(|(index, batch)| {
            let mut docs = batch.clone();
            for fault in plan.faults_at(index as u64) {
                match fault {
                    FaultKind::CorruptDocument { doc_index } if *doc_index < docs.len() => {
                        let timestamp = docs[*doc_index].timestamp();
                        let bytes = corrupt_bytes(
                            &serialize(&docs[*doc_index]),
                            seed ^ ((index as u64) << 8) ^ *doc_index as u64,
                        );
                        match reparse_if_agreed(&bytes) {
                            // Serialization drops the stream timestamp, so
                            // a surviving mutant is re-stamped with the
                            // original's to stay in order.
                            Some(doc) => docs[*doc_index] = doc.with_timestamp(timestamp),
                            None => {
                                docs.remove(*doc_index);
                            }
                        }
                    }
                    FaultKind::OutOfOrderTimestamp { doc_index } if *doc_index < docs.len() => {
                        let stale = docs[*doc_index].clone().with_timestamp(Timestamp(1));
                        docs[*doc_index] = stale;
                    }
                    _ => {}
                }
            }
            docs
        })
        .collect()
}

/// The surviving-document stream: the chaos engine's input minus every
/// document its quarantine records rejected, batch positions preserved.
fn survivor_batches(mutated: &[Vec<Document>], records: &[QuarantineRecord]) -> Vec<Vec<Document>> {
    let quarantined: HashSet<(u64, usize)> =
        records.iter().map(|r| (r.batch, r.doc_index)).collect();
    mutated
        .iter()
        .enumerate()
        .map(|(batch, docs)| {
            docs.iter()
                .enumerate()
                .filter(|(i, _)| !quarantined.contains(&(batch as u64, *i)))
                .map(|(_, d)| d.clone())
                .collect()
        })
        .collect()
}

/// The worker-directed faults the engine will actually deliver for this
/// plan: each one retires a worker and forces a respawn, so the count pins
/// both `faults_injected` and `shards_respawned`.
fn worker_fault_count(plan: &FaultPlan, batches: u64, front_pool: usize) -> usize {
    (0..batches)
        .flat_map(|b| plan.faults_at(b))
        .filter(|f| match f {
            FaultKind::PanicShard { .. } | FaultKind::DropResponse { .. } => true,
            FaultKind::PanicFront { .. } => front_pool > 0,
            _ => false,
        })
        .count()
}

/// The differential property itself. Runs one seeded fault schedule against
/// a Quarantine engine, derives the surviving stream from its quarantine
/// records, and demands byte-identical output from a fresh fault-free engine
/// fed only the survivors — plus a clean audit and exact failure-model
/// accounting on the chaos side.
fn run_chaos_differential(
    seed: u64,
    base_config: EngineConfig,
    num_shards: usize,
    front_pool: usize,
    pipelined: bool,
    num_queries: usize,
    items: usize,
) {
    let (queries, docs) = rss_workload(seed, num_queries, items);
    let batches: Vec<Vec<Document>> = docs.chunks(4).map(<[_]>::to_vec).collect();
    let plan = FaultPlan::seeded(seed, batches.len() as u64, num_shards, front_pool);
    let mut config = base_config.with_retain_documents(false);
    config.enforce_in_order = true;

    let mutated = apply_document_faults(&plan, &batches, seed);

    let mut chaos = chaos_engine(
        config.clone(),
        num_shards,
        front_pool,
        FaultPolicy::Quarantine,
        plan.clone(),
        &queries,
    );
    let chaos_out: Vec<Vec<MatchOutput>> = if pipelined {
        chaos
            .process_batches(mutated.clone())
            .expect("quarantine absorbs every injected fault")
    } else {
        mutated
            .iter()
            .map(|batch| {
                chaos
                    .process_batch(batch.clone())
                    .expect("quarantine absorbs every injected fault")
            })
            .collect()
    };

    let records = chaos.take_quarantine_records();
    for record in &records {
        assert!(
            matches!(record.error, CoreError::OutOfOrderDocument { .. }),
            "unexpected quarantine reason: {:?}",
            record.error
        );
        assert!(record.doc_index < mutated[record.batch as usize].len());
    }

    let survivors = survivor_batches(&mutated, &records);
    let mut reference = sharded_engine_with_topology(config, num_shards, front_pool, &queries);
    let expected: Vec<Vec<MatchOutput>> = survivors
        .iter()
        .map(|batch| {
            reference
                .process_batch(batch.clone())
                .expect("the surviving stream is clean by construction")
        })
        .collect();

    assert_eq!(
        chaos_out, expected,
        "chaos output diverged from the survivor reference \
         (seed {seed}, shards {num_shards}, front {front_pool}, pipelined {pipelined})"
    );
    assert_audit_clean_sharded(&chaos);

    let stats = chaos.stats().expect("every shard is live after healing");
    assert_eq!(stats.docs_quarantined, records.len());
    let worker_faults = worker_fault_count(&plan, batches.len() as u64, front_pool);
    assert_eq!(stats.faults_injected, worker_faults);
    assert_eq!(stats.shards_respawned, worker_faults);
    if worker_faults > 0 {
        assert!(
            stats.timings.recovery > Duration::ZERO,
            "respawns must be accounted in the recovery phase"
        );
    }
    assert!(chaos.degraded_shards().is_empty());
}

/// The CI chaos matrix: three fixed seeds, both sharded topologies,
/// batch-at-a-time ingestion.
#[test]
fn chaos_differential_across_seeds_and_topologies() {
    for seed in chaos_seeds() {
        for (num_shards, front_pool) in [(3, 0), (3, 2)] {
            run_chaos_differential(
                seed,
                EngineConfig::mmqjp(),
                num_shards,
                front_pool,
                false,
                24,
                48,
            );
        }
    }
}

/// The same property through the pipelined entry point, where recovery has
/// to cooperate with the depth-1 overlap of Stage 1 and Stage 2.
#[test]
fn chaos_differential_pipelined() {
    for seed in chaos_seeds() {
        run_chaos_differential(seed, EngineConfig::mmqjp_view_mat(), 3, 2, true, 24, 48);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The differential property holds for arbitrary seeds across modes,
    /// shard counts, topologies and both entry points — smaller workloads
    /// than the fixed-seed matrix, many more schedules.
    #[test]
    fn chaos_differential_holds_for_any_seed(
        seed in 0u64..1_000_000,
        num_shards in 1usize..5,
        front_pool in 0usize..3,
        view_mat in 0u8..2,
        pipelined in 0u8..2,
    ) {
        let pipelined = pipelined == 1;
        let base = if view_mat == 1 {
            EngineConfig::mmqjp_view_mat()
        } else {
            EngineConfig::mmqjp()
        };
        run_chaos_differential(seed, base, num_shards, front_pool, pipelined, 16, 32);
    }
}

/// Hand-scheduled worker deaths only (no poison input): healing must be
/// fully transparent — identical output to a never-failed engine, exact
/// respawn/fault accounting, state replayed, audit clean.
#[test]
fn injected_worker_deaths_heal_transparently() {
    for front_pool in [0usize, 2] {
        let (queries, docs) = rss_workload(61, 24, 40);
        let batches: Vec<Vec<Document>> = docs.chunks(4).map(<[_]>::to_vec).collect();
        let mut plan = FaultPlan::none()
            .at(1, FaultKind::PanicShard { shard: 0 })
            .at(3, FaultKind::DropResponse { shard: 2 })
            .at(6, FaultKind::PanicShard { shard: 1 })
            .at(8, FaultKind::DropResponse { shard: 0 });
        if front_pool > 0 {
            plan = plan.at(4, FaultKind::PanicFront { worker: 1 });
        }
        let expected_respawns = if front_pool > 0 { 5 } else { 4 };
        let config = EngineConfig::mmqjp().with_retain_documents(false);

        let mut chaos = chaos_engine(
            config.clone(),
            3,
            front_pool,
            FaultPolicy::Quarantine,
            plan,
            &queries,
        );
        let chaos_out: Vec<Vec<MatchOutput>> = batches
            .iter()
            .map(|b| chaos.process_batch(b.clone()).expect("healed inline"))
            .collect();

        let mut reference = sharded_engine_with_topology(config, 3, front_pool, &queries);
        let expected: Vec<Vec<MatchOutput>> = batches
            .iter()
            .map(|b| reference.process_batch(b.clone()).expect("fault-free"))
            .collect();
        assert_eq!(chaos_out, expected, "front pool {front_pool}");
        assert!(
            expected.iter().any(|b| !b.is_empty()),
            "the workload must produce matches for the comparison to bite"
        );

        let stats = chaos.stats().expect("all shards live after healing");
        assert_eq!(stats.shards_respawned, expected_respawns);
        assert_eq!(stats.faults_injected, expected_respawns);
        assert_eq!(stats.docs_quarantined, 0);
        assert!(chaos.take_quarantine_records().is_empty());
        assert!(stats.rows_replayed > 0, "healing replays in-window state");
        assert!(stats.timings.recovery > Duration::ZERO);
        assert_audit_clean_sharded(&chaos);
        assert!(chaos.degraded_shards().is_empty());
    }
}

/// FailFast containment: an injected panic surfaces as the typed
/// [`CoreError::ShardPanicked`] — never a hang, never an unwinding test
/// harness — and the dead shard stays dead (no retention to rebuild from).
#[test]
fn failfast_turns_a_panic_into_a_typed_error() {
    let (queries, docs) = rss_workload(81, 10, 12);
    let batches: Vec<Vec<Document>> = docs.chunks(4).map(<[_]>::to_vec).collect();
    let plan = FaultPlan::none().at(1, FaultKind::PanicShard { shard: 0 });
    let config = EngineConfig::mmqjp().with_retain_documents(false);
    let mut engine = chaos_engine(config, 2, 0, FaultPolicy::FailFast, plan, &queries);

    engine
        .process_batch(batches[0].clone())
        .expect("no fault scheduled for batch 0");
    let err = engine.process_batch(batches[1].clone()).unwrap_err();
    match err {
        CoreError::ShardPanicked { shard, payload } => {
            assert_eq!(shard, 0);
            assert!(
                payload.contains("injected fault"),
                "panic payload should carry the original message, got {payload:?}"
            );
        }
        other => panic!("expected ShardPanicked, got {other:?}"),
    }
    assert_eq!(engine.degraded_shards(), vec![0]);

    // The shard is gone for good under FailFast: subsequent batches fail
    // with a typed availability error and a respawn is refused (nothing was
    // retained to rebuild from).
    let err = engine.process_batch(batches[2].clone()).unwrap_err();
    assert!(matches!(err, CoreError::ShardUnavailable { shard: 0 }));
    assert!(matches!(
        engine.respawn_shard(0).unwrap_err(),
        CoreError::ShardUnavailable { shard: 0 }
    ));
}

/// Degrade: a dead shard's queries go dark while every surviving shard
/// keeps serving; stats and audit skip the corpse; a manual respawn rebuilds
/// it from the retained ledger and replay log, after which output is again
/// identical to a never-failed engine.
#[test]
fn degrade_keeps_serving_and_manual_respawn_restores() {
    let (queries, docs) = rss_workload(71, 30, 40);
    let batches: Vec<Vec<Document>> = docs.chunks(4).map(<[_]>::to_vec).collect();
    let plan = FaultPlan::none().at(2, FaultKind::PanicShard { shard: 1 });
    let config = EngineConfig::mmqjp().with_retain_documents(false);

    let mut degraded = chaos_engine(config.clone(), 4, 0, FaultPolicy::Degrade, plan, &queries);
    let mut reference = sharded_engine_with_topology(config, 4, 0, &queries);

    for (index, batch) in batches.iter().enumerate() {
        if index == 6 {
            assert_eq!(degraded.degraded_shards(), vec![1]);
            degraded.respawn_shard(1).expect("manual respawn rebuilds");
            assert!(degraded.degraded_shards().is_empty());
        }
        let out = degraded
            .process_batch(batch.clone())
            .expect("degrade keeps serving");
        let expected = reference.process_batch(batch.clone()).expect("fault-free");
        if (2..6).contains(&index) {
            // Shard 1 is dark: its matches are missing, everyone else's are
            // intact and canonically ordered.
            let out_keys: HashSet<_> = match_keys(&out).into_iter().collect();
            let expected_keys: HashSet<_> = match_keys(&expected).into_iter().collect();
            assert!(
                out_keys.is_subset(&expected_keys),
                "a degraded engine must never invent matches (batch {index})"
            );
        } else {
            assert_eq!(out, expected, "batch {index}");
        }
        // Stats and audit stay reachable throughout the outage.
        degraded.stats().expect("dead shards report zeroes");
        assert_audit_clean_sharded(&degraded);
    }
    assert_eq!(degraded.stats().unwrap().shards_respawned, 1);
}

/// Regression for the pipelined checkpoint/rollback: when collecting batch
/// `k` fails *after* batch `k+1` was already staged, the staged batch must
/// leave no trace — otherwise the front's document sequence drifts ahead of
/// anything the shards (or a reference engine) ever saw.
#[test]
fn collect_failure_rolls_back_the_staged_batch() {
    let (queries, docs) = rss_workload(91, 12, 12);
    let batches: Vec<Vec<Document>> = docs.chunks(4).map(<[_]>::to_vec).collect();
    assert_eq!(batches.len(), 3);
    let plan = FaultPlan::none().at(0, FaultKind::DropResponse { shard: 1 });
    let mut config = EngineConfig::mmqjp().with_retain_documents(false);
    config.enforce_in_order = true;
    let mut engine = chaos_engine(config, 2, 2, FaultPolicy::FailFast, plan, &queries);

    // Timeline: batch 0 is dispatched (with the fault); batch 1 is staged by
    // the front; collecting batch 0 then discovers the dropped reply and
    // fails — at which point batch 1 must be rolled back and batch 2 never
    // reached.
    let err = engine.process_batches(batches).unwrap_err();
    assert!(matches!(err, CoreError::ShardUnavailable { shard: 1 }));
    let front = engine.front_stats();
    assert_eq!(
        front.documents_processed, 4,
        "only the dispatched batch may count; the staged one was rolled back"
    );
    assert_eq!(front.docs_parsed_once, 4);
}

/// Poison input mid-stream through the pipelined entry point under
/// Quarantine: the stale document is skipped and recorded, every batch stays
/// aligned, and output matches a reference that never saw the poison.
#[test]
fn pipelined_quarantine_skips_poison_and_stays_aligned() {
    let (queries, docs) = rss_workload(93, 16, 24);
    let batches: Vec<Vec<Document>> = docs.chunks(3).map(<[_]>::to_vec).collect();
    let mut config = EngineConfig::mmqjp().with_retain_documents(false);
    config.enforce_in_order = true;

    // Make one document in batch 3 stale by hand.
    let mut poisoned = batches.clone();
    let stale = poisoned[3][1].clone().with_timestamp(Timestamp(1));
    poisoned[3][1] = stale;

    let mut chaos = chaos_engine(
        config.clone(),
        3,
        2,
        FaultPolicy::Quarantine,
        FaultPlan::none(),
        &queries,
    );
    let out = chaos
        .process_batches(poisoned.clone())
        .expect("poison is quarantined, not fatal");

    let records = chaos.take_quarantine_records();
    assert_eq!(records.len(), 1);
    assert_eq!((records[0].batch, records[0].doc_index), (3, 1));

    let survivors = survivor_batches(&poisoned, &records);
    let mut reference = sharded_engine_with_topology(config, 3, 2, &queries);
    let expected = reference
        .process_batches(survivors)
        .expect("survivors are clean");
    assert_eq!(out, expected);
    assert_audit_clean_sharded(&chaos);
    assert_eq!(chaos.stats().unwrap().docs_quarantined, 1);
}
