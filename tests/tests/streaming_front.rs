//! Certification of the streaming single-pass front end.
//!
//! Two properties anchor the tentpole:
//!
//! 1. **Parser differential** (proptest): the pull parser — both when it
//!    builds a DOM (`parse_document_streaming`) and when it feeds the fused
//!    parse ⊕ Stage-1 pass with no DOM at all
//!    (`evaluate_witnesses_streaming_text`) — agrees byte for byte with the
//!    DOM parser on randomly generated documents exercising CDATA sections,
//!    numeric character references, comments, self-closing elements and
//!    attributes.
//! 2. **Front-end sweep**: every processing mode × both sharded topologies
//!    × streaming front on/off produces byte-identical match output on the
//!    RSS join workload and on single-block subscriptions.

use mmqjp_core::{EngineConfig, MmqjpEngine, ShardedEngine};
use mmqjp_integration_tests::{all_modes, match_keys, run_stream_sharded, run_stream_sorted};
use mmqjp_workload::{RssQueryGenerator, RssStreamConfig, RssStreamGenerator};
use mmqjp_xml::{parse_document, parse_document_streaming};
use mmqjp_xpath::{parse_pattern, PatternIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Random XML documents for the parser differential
// ---------------------------------------------------------------------------

/// One construction step of a random document. Interpreted against a stack
/// of open elements, so any op sequence yields well-formed XML.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: usize,
    tag: usize,
    value: usize,
}

/// Render an op sequence into XML text. The vocabulary is small on purpose
/// (tags `t0..t5`, values `v0..`) so patterns can match, and every decoration
/// the pull parser must handle is reachable: comments, CDATA, numeric
/// character references (decimal and hex), self-closing elements,
/// attributes, and plain nested elements.
fn render_xml(ops: &[Op]) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?><!-- preamble --><r>");
    let mut depth = 1usize;
    for op in ops {
        let t = op.tag % 6;
        let v = op.value;
        match op.kind % 9 {
            0 => {
                out.push_str(&format!("<t{t}>"));
                depth += 1;
            }
            1 => {
                if depth > 1 {
                    out.push_str(&format!("</t{}>", close_tag(&out)));
                    depth -= 1;
                }
            }
            2 => out.push_str(&format!("<t{t}/>")),
            3 => out.push_str(&format!("v{v}&#38;&#x3C;x")),
            4 => out.push_str(&format!("<![CDATA[v{v} <raw> & unescaped]]>")),
            5 => out.push_str(&format!("<!-- comment {v} -->")),
            6 => out.push_str(&format!("v{v} ")),
            7 => out.push_str(&format!("<t{t} a=\"v{v}\" b=\"&#65;\"/>")),
            _ => {
                out.push_str(&format!("<t{t} a=\"v{v}\">"));
                depth += 1;
            }
        }
    }
    while depth > 1 {
        out.push_str(&format!("</t{}>", close_tag(&out)));
        depth -= 1;
    }
    out.push_str("</r>");
    out
}

/// The tag of the innermost open element, recovered from the rendered text
/// (the last `<tN...>` that is neither closed after it nor self-closing).
/// Linear rescan — fine at test sizes, and it keeps `render_xml` stateless.
fn close_tag(rendered: &str) -> usize {
    let mut stack: Vec<usize> = Vec::new();
    let bytes = rendered.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            if rendered[i..].starts_with("<!--") {
                i += rendered[i..]
                    .find("-->")
                    .map_or(rendered.len() - i, |p| p + 3);
                continue;
            }
            if rendered[i..].starts_with("<![CDATA[") {
                i += rendered[i..]
                    .find("]]>")
                    .map_or(rendered.len() - i, |p| p + 3);
                continue;
            }
            if rendered[i..].starts_with("<?") {
                i += rendered[i..]
                    .find("?>")
                    .map_or(rendered.len() - i, |p| p + 2);
                continue;
            }
            let end = i + rendered[i..].find('>').expect("well-formed render");
            let inner = &rendered[i + 1..end];
            if let Some(tag) = inner.strip_prefix('/') {
                let _ = tag;
                stack.pop();
            } else if !inner.ends_with('/') {
                let name = inner.split_whitespace().next().expect("tag name");
                if let Some(n) = name.strip_prefix('t') {
                    stack.push(n.parse().expect("numeric test tag"));
                } else {
                    stack.push(usize::MAX); // the root <r>
                }
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    *stack.last().expect("an open element") // callers guard depth > 1
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0usize..9, 0usize..6, 0usize..40), 0..40).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, tag, value)| Op { kind, tag, value })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The pull parser builds the same DOM as the backtracking parser on
    /// random documents with CDATA, entities, comments and self-closing
    /// elements.
    #[test]
    fn streaming_parse_equals_dom_parse(ops in ops_strategy()) {
        let xml = render_xml(&ops);
        let dom = parse_document(&xml).expect("DOM parser accepts rendered doc");
        let streamed = parse_document_streaming(&xml).expect("pull parser accepts rendered doc");
        prop_assert_eq!(dom, streamed, "parsers diverged on: {}", xml);
    }

    /// The fused parse ⊕ Stage-1 pass (no DOM built at all) yields the same
    /// per-pattern witnesses as parse-then-match on the same random text.
    #[test]
    fn fused_text_pass_equals_parse_then_match(ops in ops_strategy()) {
        let xml = render_xml(&ops);
        let mut index = PatternIndex::new();
        for p in [
            "S//r->root[.//t0->a]",
            "S//t1->x[.//t2->y]",
            "S//t0->e[.//t3->f][.//t4->g]",
            "S//r->r1[.//t5->v]",
        ] {
            index.register(parse_pattern(p).expect("pattern parses"));
        }
        let streamed = index
            .evaluate_witnesses_streaming_text(&xml)
            .expect("fused pass accepts rendered doc");
        let doc = parse_document(&xml).expect("DOM parser accepts rendered doc");
        let dom = index.evaluate_witnesses(&doc);
        prop_assert_eq!(streamed, dom, "fused pass diverged on: {}", xml);
    }
}

// ---------------------------------------------------------------------------
// Mode × topology × front-end sweep
// ---------------------------------------------------------------------------

/// Byte-identical match output across all three processing modes, both
/// sharded topologies and both Stage-1 front ends on the RSS join workload.
#[test]
fn match_output_identical_across_modes_topologies_and_fronts() {
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(21);
    let queries = generator.generate_queries(16, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items: 60,
        ..RssStreamConfig::default()
    })
    .documents();

    let mut reference: Option<Vec<_>> = None;
    for streaming in [true, false] {
        for mode in all_modes() {
            let config = EngineConfig {
                mode,
                ..EngineConfig::default()
            }
            .with_retain_documents(false)
            .with_streaming_front(streaming);
            let mut engine = MmqjpEngine::new(config.clone());
            for q in &queries {
                engine.register_query(q.clone()).expect("query registers");
            }
            let matches = run_stream_sorted(&mut engine, docs.clone());
            let keys = match_keys(&matches);
            assert!(!keys.is_empty(), "sweep workload must produce matches");
            match &reference {
                None => reference = Some(keys),
                Some(r) => assert_eq!(
                    r, &keys,
                    "single-engine {mode:?} (streaming={streaming}) diverges"
                ),
            }
            for (topology, front_pool) in [("replicated", 0), ("hybrid", 2)] {
                let mut sharded = ShardedEngine::new(
                    config
                        .clone()
                        .with_num_shards(4)
                        .with_front_pool(front_pool),
                );
                for q in &queries {
                    sharded.register_query(q.clone()).expect("query registers");
                }
                let sharded_matches = run_stream_sharded(&mut sharded, docs.clone());
                assert_eq!(
                    sharded_matches, matches,
                    "{topology} topology diverges from single-engine {mode:?} \
                     (streaming={streaming})"
                );
            }
        }
    }
}

/// Single-block subscriptions — answered straight from Stage 1, and at the
/// front stage in the hybrid topology — are byte-identical under both front
/// ends too.
#[test]
fn single_block_output_identical_across_fronts() {
    let subscriptions = [
        "S//item[.//title]",
        "S//channel[.//item]",
        "S//item[.//enclosure_url]",
    ];
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items: 30,
        ..RssStreamConfig::default()
    })
    .documents();

    let mut reference: Option<Vec<_>> = None;
    for streaming in [true, false] {
        for mode in all_modes() {
            let config = EngineConfig {
                mode,
                ..EngineConfig::default()
            }
            .with_streaming_front(streaming);
            let mut engine = MmqjpEngine::new(config.clone());
            for s in subscriptions {
                engine
                    .register_query_text(s)
                    .expect("subscription registers");
            }
            let matches = run_stream_sorted(&mut engine, docs.clone());
            assert!(!matches.is_empty(), "subscriptions must fire");
            let keys = match_keys(&matches);
            match &reference {
                None => reference = Some(keys),
                Some(r) => assert_eq!(
                    r, &keys,
                    "single-block output diverges for {mode:?} (streaming={streaming})"
                ),
            }
            let mut hybrid =
                ShardedEngine::new(config.clone().with_num_shards(3).with_front_pool(2));
            for s in subscriptions {
                hybrid
                    .register_query_text(s)
                    .expect("subscription registers");
            }
            let hybrid_matches = run_stream_sharded(&mut hybrid, docs.clone());
            assert_eq!(
                hybrid_matches, matches,
                "hybrid front single-block output diverges for {mode:?} \
                 (streaming={streaming})"
            );
        }
    }
}
