//! Registration-time plan verification over a well-formed catalog.
//!
//! The malformed-plan fixtures live next to the verifier in
//! `mmqjp-relational` (each one triggers a specific
//! [`PlanViolation`](mmqjp_relational::PlanViolation)). This suite covers
//! the complementary direction: a diverse, *well-formed* catalog — the
//! paper's Figure 1/2 queries plus generated flat-schema, complex-schema
//! and RSS workloads — must compile, verify and register cleanly in every
//! processing mode and topology, and verification must never change
//! results.

use mmqjp_core::{EngineConfig, MmqjpEngine, ShardedEngine};
use mmqjp_integration_tests::{
    all_modes, assert_audit_clean, assert_audit_clean_sharded, match_keys, run_stream, Q1, Q2, Q3,
};
use mmqjp_workload::{
    ComplexSchemaWorkload, FlatSchemaWorkload, RssQueryGenerator, RssStreamConfig,
    RssStreamGenerator,
};
use mmqjp_xml::Document;
use mmqjp_xscl::{parse_query, XsclQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A catalog spanning every query shape the workload generators produce,
/// plus the paper's walkthrough queries.
fn well_formed_catalog() -> Vec<XsclQuery> {
    let mut queries: Vec<XsclQuery> = [Q1, Q2, Q3]
        .iter()
        .map(|q| parse_query(q).expect("fixture query parses"))
        .collect();

    let mut rng = StdRng::seed_from_u64(42);
    let flat = FlatSchemaWorkload::new(12, 0.8);
    queries.extend(flat.generate_queries(8, &mut rng));
    let complex = ComplexSchemaWorkload::new(4, 3, 0.8);
    queries.extend(complex.generate_queries(8, &mut rng));
    queries.extend(RssQueryGenerator::new(0.8).generate_queries(8, &mut rng));
    queries
}

/// Documents that actually exercise the catalog's patterns.
fn catalog_documents() -> Vec<Document> {
    let mut docs = Vec::new();
    let flat = FlatSchemaWorkload::new(12, 0.8);
    let (a, b) = flat.documents();
    docs.push(a);
    docs.push(b);
    let complex = ComplexSchemaWorkload::new(4, 3, 0.8);
    let (a, b) = complex.documents();
    docs.push(a);
    docs.push(b);
    docs.extend(
        RssStreamGenerator::new(RssStreamConfig {
            items: 6,
            channels: 3,
            title_vocabulary: 10,
            description_vocabulary: 15,
            ..RssStreamConfig::default()
        })
        .documents(),
    );
    // Re-timestamp into one monotone stream so in-order engines accept it.
    for (i, d) in docs.iter_mut().enumerate() {
        d.set_timestamp(mmqjp_xml::Timestamp(i as u64 + 1));
    }
    docs
}

/// Every generated query must register (i.e. compile *and* pass the plan
/// verifier, which is on by default) in all three modes, and the engine
/// invariant audit stays clean after streaming documents through the
/// verified plans.
#[test]
fn well_formed_catalog_verifies_in_all_three_modes() {
    let queries = well_formed_catalog();
    let docs = catalog_documents();
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        };
        assert!(config.verify_plans, "plan verification defaults to on");
        let mut engine = MmqjpEngine::new(config);
        for (i, q) in queries.iter().enumerate() {
            engine
                .register_query(q.clone())
                .unwrap_or_else(|e| panic!("well-formed query #{i} rejected in {mode:?}: {e}"));
        }
        run_stream(&mut engine, docs.clone());
        assert_audit_clean(&engine);
    }
}

/// Verification is observation-only: the same catalog and stream produce
/// byte-identical matches with `verify_plans` on and off.
#[test]
fn verification_never_changes_results() {
    let queries = well_formed_catalog();
    let docs = catalog_documents();
    let mut reference: Option<Vec<_>> = None;
    for verify in [true, false] {
        let config = EngineConfig::mmqjp().with_verify_plans(verify);
        let mut engine = MmqjpEngine::new(config);
        for q in &queries {
            engine.register_query(q.clone()).expect("catalog registers");
        }
        let keys = match_keys(&run_stream(&mut engine, docs.clone()));
        match &reference {
            None => reference = Some(keys),
            Some(expected) => assert_eq!(
                expected, &keys,
                "verify_plans={verify} changed the match set"
            ),
        }
    }
    assert!(
        reference.map(|r| !r.is_empty()).unwrap_or(false),
        "the catalog sweep should produce at least one match"
    );
}

/// The sharded engine routes registrations through the same verified path
/// on every shard, in both the replicated and hybrid topologies.
#[test]
fn sharded_registration_verifies_in_both_topologies() {
    let queries = well_formed_catalog();
    for front_pool in [0usize, 2] {
        let config = EngineConfig::mmqjp()
            .with_num_shards(3)
            .with_front_pool(front_pool);
        let mut engine = ShardedEngine::new(config);
        for (i, q) in queries.iter().enumerate() {
            engine.register_query(q.clone()).unwrap_or_else(|e| {
                panic!("well-formed query #{i} rejected (front_pool={front_pool}): {e}")
            });
        }
        for doc in catalog_documents() {
            engine.process_document(doc).expect("processing succeeds");
        }
        assert_audit_clean_sharded(&engine);
    }
}
