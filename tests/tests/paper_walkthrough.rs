//! End-to-end reproduction of the paper's running example: the queries of
//! Tables 1–2 against the documents of Figures 1–2, following the
//! Section 4.4.1 walkthrough and the Table 4 relation contents.

use mmqjp_core::QueryId;
use mmqjp_integration_tests::{all_modes, d1, d2, engine_with_queries, Q1, Q2, Q3};
use mmqjp_xml::{serialize, NodeId};

#[test]
fn three_example_queries_share_one_template_with_six_meta_variables() {
    for mode in all_modes() {
        let engine = engine_with_queries(mode, &[Q1, Q2, Q3]);
        assert_eq!(engine.num_queries(), 3);
        assert_eq!(engine.num_templates(), 1, "mode {mode:?}");
        let template = engine.registry().templates().next().unwrap();
        assert_eq!(template.template.num_meta_vars(), 6);
        // RT mirrors Table 4(a): one tuple per query, qid + 6 vars + wl.
        assert_eq!(template.rt.len(), 3);
        assert_eq!(template.rt.schema().arity(), 8);
    }
}

#[test]
fn walkthrough_produces_q1_and_q2_matches_only() {
    for mode in all_modes() {
        let mut engine = engine_with_queries(mode, &[Q1, Q2, Q3]);
        // d1 is the first event: Rdoc/Rbin are empty, no results (§4.4.1).
        let first = engine.process_document(d1()).unwrap();
        assert!(first.is_empty(), "mode {mode:?}");
        // d2 arrives: Q1 and Q2 produce one output each; Q3 (two blog
        // postings) does not fire.
        let out = engine.process_document(d2()).unwrap();
        let mut fired: Vec<u64> = out.iter().map(|m| m.query.raw()).collect();
        fired.sort_unstable();
        assert_eq!(fired, vec![0, 1], "mode {mode:?}");
    }
}

#[test]
fn q1_output_document_contains_both_subtrees() {
    let mut engine = engine_with_queries(mmqjp_core::ProcessingMode::Mmqjp, &[Q1]);
    engine.process_document(d1()).unwrap();
    let out = engine.process_document(d2()).unwrap();
    assert_eq!(out.len(), 1);
    let doc = out[0]
        .document
        .as_ref()
        .expect("SELECT * constructs a document");
    // "The root of the output document has two subtrees, where the first
    // corresponds to the subtree rooted at the book element in d1, and the
    // second to the subtree rooted at the blog element in d2."
    assert_eq!(doc.root().tag(), "result");
    let children = doc.root().children();
    assert_eq!(children.len(), 2);
    assert_eq!(doc.node(children[0]).tag(), "book");
    assert_eq!(doc.node(children[1]).tag(), "blog");
    let xml = serialize(doc);
    assert!(xml.contains("<author>Danny Ayers</author>"));
    assert!(xml.contains("Beginning RSS and Atom Programming"));
}

#[test]
fn q1_bindings_identify_the_matching_author() {
    let mut engine = engine_with_queries(mmqjp_core::ProcessingMode::MmqjpViewMat, &[Q1]);
    engine.process_document(d1()).unwrap();
    let out = engine.process_document(d2()).unwrap();
    assert_eq!(out.len(), 1);
    let m = &out[0];
    assert_eq!(m.query, QueryId(0));
    // In our Figure-1 fixture Danny Ayers is node 1 of the book document
    // (the paper numbers its authors 2 and 3 because it includes attribute
    // nodes; the pre-order property is the same).
    let author = m.binding("S//book//author").unwrap();
    assert_eq!(author.node, NodeId::from_raw(1));
    let title = m.binding("S//book//title").unwrap();
    assert_eq!(title.node, NodeId::from_raw(3));
    // Blog-side bindings point into d2.
    let blog_author = m.binding("S//blog//author").unwrap();
    assert_eq!(blog_author.doc, m.right_doc);
}

#[test]
fn q3_fires_on_a_pair_of_blog_postings() {
    for mode in all_modes() {
        let mut engine = engine_with_queries(mode, &[Q3]);
        engine.process_document(d2()).unwrap();
        // A second posting by the same author with the same title.
        let repost = d2().with_timestamp(mmqjp_xml::Timestamp(40));
        let out = engine.process_document(repost).unwrap();
        assert_eq!(out.len(), 1, "mode {mode:?}");
        assert_eq!(out[0].query, QueryId(0));
    }
}

#[test]
fn order_matters_for_followed_by() {
    for mode in all_modes() {
        let mut engine = engine_with_queries(mode, &[Q1, Q2]);
        // Blog article first, book announcement second: nothing fires.
        engine
            .process_document(d2().with_timestamp(mmqjp_xml::Timestamp(5)))
            .unwrap();
        let out = engine
            .process_document(d1().with_timestamp(mmqjp_xml::Timestamp(9)))
            .unwrap();
        assert!(out.is_empty(), "mode {mode:?}");
    }
}

#[test]
fn witness_relations_match_table_4_shapes() {
    // After processing d1 with Q1, Q2, Q3 registered, the join state holds
    // the book document's bindings: author x2, title, category x2 string
    // values (Table 4(b)) and the corresponding variable-pair tuples
    // (Table 4(c)).
    let mut engine = engine_with_queries(mmqjp_core::ProcessingMode::Mmqjp, &[Q1, Q2, Q3]);
    engine.process_document(d1()).unwrap();
    let stats = engine.stats();
    // Five bound nodes of d1 (2 authors, 1 title, 2 categories).
    assert_eq!(stats.rdoc_tuples, 5);
    // Five variable-pair bindings (book//author x2, book//title,
    // book//category x2) — the blog-side patterns do not match d1.
    assert_eq!(stats.rbin_tuples, 5);
}
