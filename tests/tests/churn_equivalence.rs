//! Differential equivalence harness for online subscription churn.
//!
//! The certified crux: after **any** interleaving of registers, unregisters
//! and documents, the engine's matches are byte-identical (modulo the query-
//! id renumbering the harness reverses) to a *fresh* engine that only ever
//! held the surviving queries — each registered at the same position in the
//! document stream — fed the same documents. Matches produced by doomed
//! queries during their lifetime are exactly the rows filtered out; nothing
//! else may differ.
//!
//! Every scripted scenario runs across Sequential / MMQJP / MMQJP+VM, both
//! on the single `MmqjpEngine` and on `ShardedEngine` with 1 / 2 / 4 shards
//! (where churned and reference engines may even place the same query on
//! *different* shards, since ids differ — the canonical merge order must
//! absorb that too).

use mmqjp_core::{
    sort_matches, CoreError, EngineConfig, MatchOutput, MmqjpEngine, QueryId, ShardedEngine,
};
use mmqjp_integration_tests::all_modes;
use mmqjp_xml::{rss, Document, Timestamp};
use std::collections::{HashMap, HashSet};

/// One step of a churn script.
#[derive(Debug, Clone)]
enum Op {
    /// Register this query text; its ordinal is its position among `Reg`
    /// ops.
    Reg(&'static str),
    /// Unregister the query registered by the n-th `Reg` op.
    Unreg(usize),
    /// Process one document.
    Doc(Document),
}

/// A single or sharded engine behind one interface, so every scenario runs
/// against both.
enum AnyEngine {
    Single(Box<MmqjpEngine>),
    Sharded(Box<ShardedEngine>),
}

impl AnyEngine {
    fn register(&mut self, text: &str) -> QueryId {
        match self {
            AnyEngine::Single(e) => e.register_query_text(text).expect("query registers"),
            AnyEngine::Sharded(e) => e.register_query_text(text).expect("query registers"),
        }
    }

    fn unregister(&mut self, id: QueryId) -> Result<(), CoreError> {
        match self {
            AnyEngine::Single(e) => e.unregister_query(id),
            AnyEngine::Sharded(e) => e.unregister_query(id),
        }
    }

    fn process(&mut self, doc: Document) -> Vec<MatchOutput> {
        match self {
            AnyEngine::Single(e) => e.process_document(doc).expect("document processes"),
            AnyEngine::Sharded(e) => e.process_document(doc).expect("document processes"),
        }
    }

    /// Assert the engine's invariant audit comes back clean.
    fn assert_audit_clean(&self) {
        match self {
            AnyEngine::Single(e) => mmqjp_integration_tests::assert_audit_clean(e),
            AnyEngine::Sharded(e) => mmqjp_integration_tests::assert_audit_clean_sharded(e),
        }
    }
}

/// Run one script differentially on one engine constructor: the churned
/// engine replays the whole script; the reference engine replays it with the
/// doomed queries' registrations (and all unregisters) removed. At every
/// document, the churned matches restricted to surviving queries must be
/// byte-identical to the reference matches (after mapping reference ids back
/// to churned ids), in canonical order.
fn run_differential(mut make: impl FnMut() -> AnyEngine, script: &[Op], label: &str) {
    // Which Reg ordinals get unregistered somewhere in the script.
    let doomed: HashSet<usize> = script
        .iter()
        .filter_map(|op| match op {
            Op::Unreg(n) => Some(*n),
            _ => None,
        })
        .collect();

    let mut churned = make();
    let mut reference = make();
    let mut churned_ids: Vec<QueryId> = Vec::new();
    let mut survivors: HashSet<QueryId> = HashSet::new();
    let mut churned_of_ref: HashMap<QueryId, QueryId> = HashMap::new();
    let mut reg_ordinal = 0usize;
    let mut doc_count = 0usize;

    for op in script {
        match op {
            Op::Reg(text) => {
                let cid = churned.register(text);
                churned_ids.push(cid);
                if !doomed.contains(&reg_ordinal) {
                    survivors.insert(cid);
                    let rid = reference.register(text);
                    churned_of_ref.insert(rid, cid);
                }
                reg_ordinal += 1;
            }
            Op::Unreg(n) => {
                churned
                    .unregister(churned_ids[*n])
                    .expect("scripted unregister targets are live");
            }
            Op::Doc(doc) => {
                doc_count += 1;
                let mut got: Vec<MatchOutput> = churned
                    .process(doc.clone())
                    .into_iter()
                    .filter(|m| survivors.contains(&m.query))
                    .collect();
                let mut expected: Vec<MatchOutput> = reference
                    .process(doc.clone())
                    .into_iter()
                    .map(|mut m| {
                        m.query = churned_of_ref[&m.query];
                        m
                    })
                    .collect();
                sort_matches(&mut got);
                sort_matches(&mut expected);
                assert_eq!(
                    got, expected,
                    "{label}: document #{doc_count} diverged from the survivor engine"
                );
            }
        }
    }
    // After any interleaving of registers, unregisters and documents, every
    // refcounted structure in both engines must still balance exactly.
    churned.assert_audit_clean();
    reference.assert_audit_clean();
}

/// Run a script differentially across every mode × {single, sharded 1/2/4}.
fn assert_equivalence(script: &[Op]) {
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        };
        let c = config.clone();
        run_differential(
            move || AnyEngine::Single(Box::new(MmqjpEngine::new(c.clone()))),
            script,
            &format!("{mode:?}/single"),
        );
        for shards in [1usize, 2, 4] {
            let c = config.clone().with_num_shards(shards);
            run_differential(
                move || AnyEngine::Sharded(Box::new(ShardedEngine::new(c.clone()))),
                script,
                &format!("{mode:?}/sharded({shards})"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// Q1 with a 100-unit window: book followed by a same-author same-title
/// blog article.
const Q_BOOK_BLOG: &str = "S//book->x1[.//author->x2][.//title->x3] \
    FOLLOWED BY{x2=x5 AND x3=x6, 100} \
    S//blog->x4[.//author->x5][.//title->x6]";
/// Q2: same author, same category (shares the template of Q_BOOK_BLOG).
const Q_BOOK_BLOG_CAT: &str = "S//book->x1[.//author->x2][.//category->x7] \
    FOLLOWED BY{x2=x5 AND x7=x8, 100} \
    S//blog->x4[.//author->x5][.//category->x8]";
/// Q3: blog-blog self join, window 300 — the widest window of the suite.
const Q_BLOG_BLOG_WIDE: &str = "S//blog->x4[.//author->x5][.//title->x6] \
    FOLLOWED BY{x5=x5' AND x6=x6', 300} \
    S//blog->x4'[.//author->x5'][.//title->x6']";
/// A narrow-window title join.
const Q_TITLE_NARROW: &str =
    "S//book->x1[.//title->x3] FOLLOWED BY{x3=x6, 20} S//blog->x4[.//title->x6]";
/// A symmetric JOIN query (two orientations).
const Q_TITLE_JOIN: &str = "S//item->a[.//title->t1] JOIN{t1=t2, 100} S//post->b[.//title->t2]";
/// A single-block subscription that stays registered throughout.
const Q_SINGLE: &str = "S//blog[.//author]";

fn book(ts: u64) -> Document {
    rss::book_announcement(
        &["Danny Ayers", "Andrew Watt"],
        "Beginning RSS and Atom Programming",
        &["Scripting & Programming", "Web Site Development"],
        "Wrox",
        "0764579169",
    )
    .with_timestamp(Timestamp(ts))
}

fn blog(ts: u64) -> Document {
    rss::blog_article(
        "Danny Ayers",
        "http://dannyayers.com/topics/books/rss-book",
        "Beginning RSS and Atom Programming",
        "Scripting & Programming",
        "Just heard ...",
    )
    .with_timestamp(Timestamp(ts))
}

// ---------------------------------------------------------------------------
// Scripted scenarios
// ---------------------------------------------------------------------------

#[test]
fn unregister_mid_window_drops_only_the_departed_query() {
    // Q0 and Q1 share one template; Q0 departs *between* the book and the
    // blog article, with live join state for both in the window.
    assert_equivalence(&[
        Op::Reg(Q_BOOK_BLOG),
        Op::Reg(Q_BOOK_BLOG_CAT),
        Op::Reg(Q_SINGLE),
        Op::Doc(book(10)),
        Op::Unreg(0),
        Op::Doc(blog(20)),
        Op::Doc(book(30)),
        Op::Doc(blog(40)),
    ]);
}

#[test]
fn unregister_last_member_of_a_shared_template() {
    // Both members of the shared template depart one after the other; the
    // template is retired mid-stream while the single-block subscription
    // keeps the document flow observable.
    assert_equivalence(&[
        Op::Reg(Q_BOOK_BLOG),
        Op::Reg(Q_BOOK_BLOG_CAT),
        Op::Reg(Q_SINGLE),
        Op::Doc(book(10)),
        Op::Doc(blog(20)),
        Op::Unreg(1),
        Op::Doc(book(30)),
        Op::Unreg(0),
        Op::Doc(blog(40)),
        Op::Doc(book(50)),
        Op::Doc(blog(60)),
    ]);
}

#[test]
fn unregister_the_widest_window_query() {
    // The 300-unit blog-blog query departs; retention tightens to the
    // 20-unit window, and the narrow query's matches must be unaffected —
    // including across a gap that the tightened retention now evicts.
    assert_equivalence(&[
        Op::Reg(Q_TITLE_NARROW),
        Op::Reg(Q_BLOG_BLOG_WIDE),
        Op::Doc(book(10)),
        Op::Doc(blog(21)),
        Op::Doc(blog(40)),
        Op::Unreg(1),
        Op::Doc(book(200)),
        Op::Doc(blog(210)),
        Op::Doc(blog(500)),
    ]);
}

#[test]
fn reregister_an_isomorphic_query() {
    // Q0 departs and an isomorphic twin arrives later: the twin gets a
    // fresh id and a fresh template, and only joins documents that arrived
    // after its own registration — exactly like the reference engine where
    // it is the only book-blog query ever registered.
    assert_equivalence(&[
        Op::Reg(Q_BOOK_BLOG),
        Op::Reg(Q_SINGLE),
        Op::Doc(book(10)),
        Op::Doc(blog(20)),
        Op::Unreg(0),
        Op::Doc(book(30)),
        Op::Reg(Q_BOOK_BLOG),
        Op::Doc(book(40)),
        Op::Doc(blog(50)),
        Op::Doc(blog(60)),
    ]);
}

#[test]
fn unregister_a_symmetric_join_query() {
    // A JOIN query holds two orientations (possibly in two templates);
    // unregistering it must release both.
    let item = |ts: u64| {
        let mut b = mmqjp_xml::DocumentBuilder::new("item");
        b.child_text("title", "shared");
        b.finish().with_timestamp(Timestamp(ts))
    };
    let post = |ts: u64| {
        let mut b = mmqjp_xml::DocumentBuilder::new("post");
        b.child_text("title", "shared");
        b.finish().with_timestamp(Timestamp(ts))
    };
    assert_equivalence(&[
        Op::Reg(Q_TITLE_JOIN),
        Op::Reg(Q_SINGLE),
        Op::Doc(item(10)),
        Op::Doc(post(20)),
        Op::Unreg(0),
        Op::Doc(item(30)),
        Op::Doc(post(40)),
    ]);
}

#[test]
fn interleaved_churn_with_windowed_pruning() {
    // Churn under prune_state_by_window: eviction, retention tightening and
    // unregistration interleave on one stream.
    let script = [
        Op::Reg(Q_TITLE_NARROW),
        Op::Reg(Q_BOOK_BLOG),
        Op::Doc(book(10)),
        Op::Doc(blog(25)),
        Op::Reg(Q_BLOG_BLOG_WIDE),
        Op::Doc(blog(60)),
        Op::Unreg(1),
        Op::Doc(book(90)),
        Op::Doc(blog(100)),
        Op::Unreg(2),
        Op::Doc(blog(120)),
        Op::Reg(Q_BOOK_BLOG_CAT),
        Op::Doc(book(400)),
        Op::Doc(blog(410)),
    ];
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        }
        .with_prune_state_by_window(true);
        let c = config.clone();
        run_differential(
            move || AnyEngine::Single(Box::new(MmqjpEngine::new(c.clone()))),
            &script,
            &format!("{mode:?}/single/pruned"),
        );
        for shards in [1usize, 2, 4] {
            let c = config.clone().with_num_shards(shards);
            run_differential(
                move || AnyEngine::Sharded(Box::new(ShardedEngine::new(c.clone()))),
                &script,
                &format!("{mode:?}/sharded({shards})/pruned"),
            );
        }
    }
}

#[test]
fn churned_engine_stats_stay_exact() {
    // One concrete script, checked against the lifecycle counters.
    let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
    let a = e.register_query_text(Q_BOOK_BLOG).unwrap();
    let b = e.register_query_text(Q_BOOK_BLOG_CAT).unwrap();
    e.process_document(book(10)).unwrap();
    e.process_document(blog(20)).unwrap();
    e.unregister_query(a).unwrap();
    e.unregister_query(b).unwrap();
    let c = e.register_query_text(Q_BOOK_BLOG).unwrap();
    assert!(c > b, "freed ids are never reused");
    let stats = e.stats();
    assert_eq!(stats.queries_registered, 1);
    assert_eq!(stats.queries_unregistered, 2);
    assert_eq!(stats.templates, 1);
    assert_eq!(stats.templates_retired, 1);
    assert_eq!(stats.distinct_patterns, 2);
    assert_eq!(stats.patterns_dropped, 4);
}
