//! Integration tests for the multi-core `ShardedEngine`: determinism of the
//! merged output under thread interleaving, edge cases of `process_batch` on
//! both engine types, and cross-shard statistics aggregation.

use mmqjp_core::{CoreError, EngineConfig, EngineStats, MmqjpEngine, ShardedEngine};
use mmqjp_integration_tests::{
    all_modes, d1, d2, run_stream_sharded, sharded_engine_with_queries,
    sharded_engine_with_topology, FRONT_POOLS, Q1, SHARD_COUNTS,
};
use mmqjp_workload::{
    ChurnConfig, ChurnWorkload, RssQueryGenerator, RssStreamConfig, RssStreamGenerator,
};
use mmqjp_xml::{Document, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rss_workload(
    seed: u64,
    queries: usize,
    items: usize,
) -> (Vec<mmqjp_xscl::XsclQuery>, Vec<Document>) {
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let qs = generator.generate_queries(queries, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items,
        channels: 10,
        title_vocabulary: 12,
        description_vocabulary: 18,
        ..RssStreamConfig::default()
    })
    .documents();
    (qs, docs)
}

/// Two sharded engines built from the same seed must produce identical
/// (ordered) outputs even though their worker threads interleave differently
/// run to run — the canonical merge order erases all scheduling
/// nondeterminism. Each engine is run twice to double the number of observed
/// interleavings.
#[test]
fn sharded_output_is_deterministic_across_interleavings() {
    let (queries, docs) = rss_workload(42, 80, 60);
    let run = || {
        let config = EngineConfig::mmqjp_view_mat().with_retain_documents(false);
        let mut engine = sharded_engine_with_queries(config, 4, &queries);
        run_stream_sharded(&mut engine, docs.clone())
    };
    let first = run();
    assert!(!first.is_empty(), "the workload must produce matches");
    for attempt in 0..3 {
        let again = run();
        assert_eq!(first, again, "run {attempt} diverged");
    }
}

/// Per-shard statistics sum exactly to the aggregate — no counter is dropped
/// or double-counted — and the query/document accounting matches the
/// replicate-documents / partition-queries design.
#[test]
fn shard_stats_sum_to_aggregate() {
    let (queries, docs) = rss_workload(43, 50, 40);
    for &num_shards in &SHARD_COUNTS {
        let config = EngineConfig::mmqjp().with_retain_documents(false);
        let mut engine = sharded_engine_with_queries(config, num_shards, &queries);
        let num_docs = docs.len();
        run_stream_sharded(&mut engine, docs.clone());
        let per_shard = engine.shard_stats().unwrap();
        assert_eq!(per_shard.len(), num_shards);
        let total = engine.stats().unwrap();
        assert_eq!(total, per_shard.iter().copied().sum());
        assert_eq!(total.queries_registered, queries.len());
        assert_eq!(total.documents_processed, num_docs * num_shards);
        assert_eq!(
            engine.queries_per_shard().iter().sum::<usize>(),
            queries.len()
        );
    }
}

// ---------------------------------------------------------------------------
// Hybrid topology: the full front-pool × shard-count × mode sweep
// ---------------------------------------------------------------------------

/// Run `docs` in batches of `batch` through a single engine in `config`'s
/// mode, sorting each batch canonically — the byte-level reference every
/// topology must reproduce.
fn single_engine_reference(
    config: &EngineConfig,
    queries: &[mmqjp_xscl::XsclQuery],
    docs: &[Document],
    batch: usize,
) -> Vec<mmqjp_core::MatchOutput> {
    let mut engine = MmqjpEngine::new(config.clone());
    for q in queries {
        engine.register_query(q.clone()).unwrap();
    }
    let mut out = Vec::new();
    for chunk in docs.chunks(batch) {
        let mut matches = engine.process_batch(chunk.to_vec()).unwrap();
        mmqjp_core::sort_matches(&mut matches);
        out.extend(matches);
    }
    out
}

/// Sweep every front-pool size × shard count × mode over a scenario and
/// assert (a) the pipelined hybrid output is byte-identical to the single
/// engine's canonically-ordered batches and (b) the statistics decompose
/// exactly into shard sums plus front-stage stats, with each document
/// parsed exactly once.
fn assert_hybrid_sweep_matches_single_engine(
    queries: &[mmqjp_xscl::XsclQuery],
    docs: &[Document],
    batch: usize,
    tweak: impl Fn(EngineConfig) -> EngineConfig,
) {
    for mode in all_modes() {
        let config = tweak(
            EngineConfig {
                mode,
                ..EngineConfig::default()
            }
            .with_retain_documents(false),
        );
        let expected = single_engine_reference(&config, queries, docs, batch);
        for &front_pool in &FRONT_POOLS {
            for &num_shards in &SHARD_COUNTS {
                let mut hybrid =
                    sharded_engine_with_topology(config.clone(), num_shards, front_pool, queries);
                let batches: Vec<Vec<Document>> = docs.chunks(batch).map(<[_]>::to_vec).collect();
                let num_batches = batches.len();
                let results = hybrid.process_batches(batches).unwrap();
                assert_eq!(results.len(), num_batches, "a batch was dropped");
                let got: Vec<_> = results.into_iter().flatten().collect();
                assert_eq!(
                    got, expected,
                    "{mode:?} hybrid(front {front_pool}, {num_shards} shards) diverges"
                );

                // Exact stats decomposition: aggregate == shard sum + front.
                let per_shard = hybrid.shard_stats().unwrap();
                let front = hybrid.front_stats();
                let total = hybrid.stats().unwrap();
                let shard_sum: EngineStats = per_shard.iter().copied().sum();
                assert_eq!(total, shard_sum + front);
                // Parse-once accounting: each document is parsed and counted
                // exactly once, at the front — never per shard.
                assert_eq!(front.docs_parsed_once, docs.len());
                assert_eq!(total.documents_processed, docs.len());
                assert!(per_shard.iter().all(|s| s.documents_processed == 0));
                assert_eq!(total.results_emitted, expected.len());
            }
        }
    }
}

#[test]
fn hybrid_sweep_on_windowed_rss_stream() {
    // Finite windows exercise the temporal filter through routed batches.
    let generator = RssQueryGenerator::new(0.8).with_window(mmqjp_xscl::Window::Time(15));
    let mut rng = StdRng::seed_from_u64(44);
    let queries = generator.generate_queries(20, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items: 30,
        channels: 6,
        title_vocabulary: 8,
        description_vocabulary: 12,
        ..RssStreamConfig::default()
    })
    .documents();
    assert_hybrid_sweep_matches_single_engine(&queries, &docs, 7, |c| c);
}

#[test]
fn hybrid_sweep_on_churn_stream_with_pruning() {
    // The sustained-operation scenario: heterogeneous windows with
    // incremental state expiry active, so shard-side retention bookkeeping
    // runs from routed ledger rows rather than shard-local Stage-1 output.
    let workload = ChurnWorkload::new(ChurnConfig {
        items: 40,
        num_queries: 18,
        windows: vec![15, 40],
        ..ChurnConfig::default()
    });
    let queries = workload.queries();
    let docs = workload.documents();
    assert_hybrid_sweep_matches_single_engine(&queries, &docs, 9, |c| {
        c.with_prune_state_by_window(true)
    });
}

/// Hybrid merged output is deterministic across thread interleavings, like
/// the replicated topology.
#[test]
fn hybrid_output_is_deterministic_across_interleavings() {
    let (queries, docs) = rss_workload(45, 60, 50);
    let run = || {
        let config = EngineConfig::mmqjp_view_mat().with_retain_documents(false);
        let mut engine = sharded_engine_with_topology(config, 4, 2, &queries);
        let batches: Vec<Vec<Document>> = docs.chunks(10).map(<[_]>::to_vec).collect();
        engine.process_batches(batches).unwrap()
    };
    let first = run();
    assert!(
        first.iter().any(|b| !b.is_empty()),
        "the workload must produce matches"
    );
    for attempt in 0..3 {
        assert_eq!(first, run(), "run {attempt} diverged");
    }
}

// ---------------------------------------------------------------------------
// process_batch edge cases, exercised identically on both engine types
// ---------------------------------------------------------------------------

#[test]
fn empty_batch_is_a_no_op_on_both_engines() {
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        };
        let mut single = MmqjpEngine::new(config.clone());
        single.register_query_text(Q1).unwrap();
        assert!(single.process_batch(Vec::new()).unwrap().is_empty());
        assert_eq!(single.stats().documents_processed, 0);

        let mut sharded = ShardedEngine::new(config.with_num_shards(3));
        sharded.register_query_text(Q1).unwrap();
        assert!(sharded.process_batch(Vec::new()).unwrap().is_empty());
        assert_eq!(sharded.stats().unwrap().documents_processed, 0);
    }
}

#[test]
fn zero_registered_queries_absorb_documents() {
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        };
        let mut single = MmqjpEngine::new(config.clone());
        assert!(single.process_batch(vec![d1(), d2()]).unwrap().is_empty());
        assert_eq!(single.stats().documents_processed, 2);

        // Every shard of a query-less sharded engine is an empty shard; the
        // engine must still ingest state cleanly.
        let mut sharded = ShardedEngine::new(config.clone().with_num_shards(4));
        assert!(sharded.process_batch(vec![d1(), d2()]).unwrap().is_empty());
        assert_eq!(sharded.stats().unwrap().documents_processed, 2 * 4);

        // Hybrid with zero queries: the router has no subscriptions, so the
        // shards receive only ledger rows — and each document is still
        // parsed and counted exactly once.
        let mut hybrid = ShardedEngine::new(config.with_num_shards(4).with_front_pool(2));
        assert!(hybrid.process_batch(vec![d1(), d2()]).unwrap().is_empty());
        let stats = hybrid.stats().unwrap();
        assert_eq!(stats.documents_processed, 2);
        assert_eq!(stats.docs_parsed_once, 2);
        assert_eq!(stats.witnesses_routed, 0);
    }
}

#[test]
fn single_block_only_query_sets_match_on_both_engines() {
    // No join queries at all: Stage 2 is idle and matches come straight from
    // the Stage-1 pattern matcher of whichever shard holds each subscription.
    let subscriptions = [
        "S//blog[.//author]",
        "S//book[.//title]",
        "S//blog[.//category]",
    ];
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        };
        let mut single = MmqjpEngine::new(config.clone());
        for s in subscriptions {
            single.register_query_text(s).unwrap();
        }
        let mut expected = Vec::new();
        for doc in [d1(), d2()] {
            let mut matches = single.process_batch(vec![doc]).unwrap();
            mmqjp_core::sort_matches(&mut matches);
            expected.extend(matches);
        }
        assert_eq!(expected.len(), 3); // book: title; blog: author + category

        for &num_shards in &SHARD_COUNTS {
            let mut sharded = ShardedEngine::new(config.clone().with_num_shards(num_shards));
            for s in subscriptions {
                sharded.register_query_text(s).unwrap();
            }
            let mut got = Vec::new();
            for doc in [d1(), d2()] {
                got.extend(sharded.process_batch(vec![doc]).unwrap());
            }
            assert_eq!(got, expected, "Sharded({num_shards}) diverges");

            // Hybrid: single-block subscriptions are answered entirely at
            // the front stage (Stage 2 never sees them); same bytes.
            let mut hybrid = ShardedEngine::new(
                config
                    .clone()
                    .with_num_shards(num_shards)
                    .with_front_pool(2),
            );
            for s in subscriptions {
                hybrid.register_query_text(s).unwrap();
            }
            let mut got = Vec::new();
            for doc in [d1(), d2()] {
                got.extend(hybrid.process_batch(vec![doc]).unwrap());
            }
            assert_eq!(got, expected, "Hybrid({num_shards}) diverges");
            assert_eq!(hybrid.front_stats().results_emitted, expected.len());
        }
    }
}

#[test]
fn out_of_order_batch_errors_identically_on_both_engines() {
    let mut config = EngineConfig::mmqjp();
    config.enforce_in_order = true;

    let mut single = MmqjpEngine::new(config.clone());
    single.register_query_text(Q1).unwrap();
    single
        .process_document(d1().with_timestamp(Timestamp(100)))
        .unwrap();
    let single_err = single
        .process_batch(vec![d2().with_timestamp(Timestamp(50))])
        .unwrap_err();

    let mut sharded = ShardedEngine::new(config.with_num_shards(3));
    sharded.register_query_text(Q1).unwrap();
    sharded
        .process_document(d1().with_timestamp(Timestamp(100)))
        .unwrap();
    let sharded_err = sharded
        .process_batch(vec![d2().with_timestamp(Timestamp(50))])
        .unwrap_err();

    assert_eq!(single_err, sharded_err);
    assert!(matches!(
        sharded_err,
        CoreError::OutOfOrderDocument {
            timestamp: 50,
            newest: 100
        }
    ));

    // Both engines recover identically: a later in-order document matches.
    let a = single
        .process_document(d2().with_timestamp(Timestamp(150)))
        .map(|mut m| {
            mmqjp_core::sort_matches(&mut m);
            m
        })
        .unwrap();
    let b = sharded
        .process_document(d2().with_timestamp(Timestamp(150)))
        .unwrap();
    assert_eq!(a, b);
    assert_eq!(a.len(), 1);
}
