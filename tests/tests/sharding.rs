//! Integration tests for the multi-core `ShardedEngine`: determinism of the
//! merged output under thread interleaving, edge cases of `process_batch` on
//! both engine types, and cross-shard statistics aggregation.

use mmqjp_core::{CoreError, EngineConfig, MmqjpEngine, ShardedEngine};
use mmqjp_integration_tests::{
    all_modes, d1, d2, run_stream_sharded, sharded_engine_with_queries, Q1, SHARD_COUNTS,
};
use mmqjp_workload::{RssQueryGenerator, RssStreamConfig, RssStreamGenerator};
use mmqjp_xml::{Document, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rss_workload(
    seed: u64,
    queries: usize,
    items: usize,
) -> (Vec<mmqjp_xscl::XsclQuery>, Vec<Document>) {
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let qs = generator.generate_queries(queries, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items,
        channels: 10,
        title_vocabulary: 12,
        description_vocabulary: 18,
        ..RssStreamConfig::default()
    })
    .documents();
    (qs, docs)
}

/// Two sharded engines built from the same seed must produce identical
/// (ordered) outputs even though their worker threads interleave differently
/// run to run — the canonical merge order erases all scheduling
/// nondeterminism. Each engine is run twice to double the number of observed
/// interleavings.
#[test]
fn sharded_output_is_deterministic_across_interleavings() {
    let (queries, docs) = rss_workload(42, 80, 60);
    let run = || {
        let config = EngineConfig::mmqjp_view_mat().with_retain_documents(false);
        let mut engine = sharded_engine_with_queries(config, 4, &queries);
        run_stream_sharded(&mut engine, docs.clone())
    };
    let first = run();
    assert!(!first.is_empty(), "the workload must produce matches");
    for attempt in 0..3 {
        let again = run();
        assert_eq!(first, again, "run {attempt} diverged");
    }
}

/// Per-shard statistics sum exactly to the aggregate — no counter is dropped
/// or double-counted — and the query/document accounting matches the
/// replicate-documents / partition-queries design.
#[test]
fn shard_stats_sum_to_aggregate() {
    let (queries, docs) = rss_workload(43, 50, 40);
    for &num_shards in &SHARD_COUNTS {
        let config = EngineConfig::mmqjp().with_retain_documents(false);
        let mut engine = sharded_engine_with_queries(config, num_shards, &queries);
        let num_docs = docs.len();
        run_stream_sharded(&mut engine, docs.clone());
        let per_shard = engine.shard_stats().unwrap();
        assert_eq!(per_shard.len(), num_shards);
        let total = engine.stats().unwrap();
        assert_eq!(total, per_shard.iter().copied().sum());
        assert_eq!(total.queries_registered, queries.len());
        assert_eq!(total.documents_processed, num_docs * num_shards);
        assert_eq!(
            engine.queries_per_shard().iter().sum::<usize>(),
            queries.len()
        );
    }
}

// ---------------------------------------------------------------------------
// process_batch edge cases, exercised identically on both engine types
// ---------------------------------------------------------------------------

#[test]
fn empty_batch_is_a_no_op_on_both_engines() {
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        };
        let mut single = MmqjpEngine::new(config.clone());
        single.register_query_text(Q1).unwrap();
        assert!(single.process_batch(Vec::new()).unwrap().is_empty());
        assert_eq!(single.stats().documents_processed, 0);

        let mut sharded = ShardedEngine::new(config.with_num_shards(3));
        sharded.register_query_text(Q1).unwrap();
        assert!(sharded.process_batch(Vec::new()).unwrap().is_empty());
        assert_eq!(sharded.stats().unwrap().documents_processed, 0);
    }
}

#[test]
fn zero_registered_queries_absorb_documents() {
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        };
        let mut single = MmqjpEngine::new(config.clone());
        assert!(single.process_batch(vec![d1(), d2()]).unwrap().is_empty());
        assert_eq!(single.stats().documents_processed, 2);

        // Every shard of a query-less sharded engine is an empty shard; the
        // engine must still ingest state cleanly.
        let mut sharded = ShardedEngine::new(config.with_num_shards(4));
        assert!(sharded.process_batch(vec![d1(), d2()]).unwrap().is_empty());
        assert_eq!(sharded.stats().unwrap().documents_processed, 2 * 4);
    }
}

#[test]
fn single_block_only_query_sets_match_on_both_engines() {
    // No join queries at all: Stage 2 is idle and matches come straight from
    // the Stage-1 pattern matcher of whichever shard holds each subscription.
    let subscriptions = [
        "S//blog[.//author]",
        "S//book[.//title]",
        "S//blog[.//category]",
    ];
    for mode in all_modes() {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        };
        let mut single = MmqjpEngine::new(config.clone());
        for s in subscriptions {
            single.register_query_text(s).unwrap();
        }
        let mut expected = Vec::new();
        for doc in [d1(), d2()] {
            let mut matches = single.process_batch(vec![doc]).unwrap();
            mmqjp_core::sort_matches(&mut matches);
            expected.extend(matches);
        }
        assert_eq!(expected.len(), 3); // book: title; blog: author + category

        for &num_shards in &SHARD_COUNTS {
            let mut sharded = ShardedEngine::new(config.clone().with_num_shards(num_shards));
            for s in subscriptions {
                sharded.register_query_text(s).unwrap();
            }
            let mut got = Vec::new();
            for doc in [d1(), d2()] {
                got.extend(sharded.process_batch(vec![doc]).unwrap());
            }
            assert_eq!(got, expected, "Sharded({num_shards}) diverges");
        }
    }
}

#[test]
fn out_of_order_batch_errors_identically_on_both_engines() {
    let mut config = EngineConfig::mmqjp();
    config.enforce_in_order = true;

    let mut single = MmqjpEngine::new(config.clone());
    single.register_query_text(Q1).unwrap();
    single
        .process_document(d1().with_timestamp(Timestamp(100)))
        .unwrap();
    let single_err = single
        .process_batch(vec![d2().with_timestamp(Timestamp(50))])
        .unwrap_err();

    let mut sharded = ShardedEngine::new(config.with_num_shards(3));
    sharded.register_query_text(Q1).unwrap();
    sharded
        .process_document(d1().with_timestamp(Timestamp(100)))
        .unwrap();
    let sharded_err = sharded
        .process_batch(vec![d2().with_timestamp(Timestamp(50))])
        .unwrap_err();

    assert_eq!(single_err, sharded_err);
    assert!(matches!(
        sharded_err,
        CoreError::OutOfOrderDocument {
            timestamp: 50,
            newest: 100
        }
    ));

    // Both engines recover identically: a later in-order document matches.
    let a = single
        .process_document(d2().with_timestamp(Timestamp(150)))
        .map(|mut m| {
            mmqjp_core::sort_matches(&mut m);
            m
        })
        .unwrap();
    let b = sharded
        .process_document(d2().with_timestamp(Timestamp(150)))
        .unwrap();
    assert_eq!(a, b);
    assert_eq!(a.len(), 1);
}
