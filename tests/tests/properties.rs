//! Property-based tests (proptest) over the core data structures and the
//! engine's end-to-end invariants.

use mmqjp_core::{
    sort_matches, EngineConfig, MmqjpEngine, ProcessingMode, ShardedEngine, WitnessBatch,
    WitnessRouter,
};
use mmqjp_integration_tests::{match_keys, run_stream};
use mmqjp_relational::{
    ops, Atom, ChunkedRows, ConjunctiveQuery, Database, ExecScratch, PhysicalPlan, PlanInput,
    Relation, Schema, SegmentedRelation, StringInterner, Term, Value,
};
use mmqjp_xml::{parse_document, serialize, DocId, Document, DocumentBuilder, Timestamp};
use mmqjp_xpath::{PatternId, PatternIndex, PatternNodeId};
use mmqjp_xscl::{
    normalize_query, parse_query, JoinGraph, ReducedGraph, TemplateCatalog, ValueJoin,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A random flat document: a root with up to 8 leaves whose tags and values
/// are drawn from small vocabularies (so that joins can fire).
fn flat_document_strategy() -> impl Strategy<Value = Document> {
    (
        prop::collection::vec((0usize..6, 0usize..5), 1..8),
        1u64..1000,
    )
        .prop_map(|(leaves, ts)| {
            let mut b = DocumentBuilder::new("item");
            b.timestamp(Timestamp(ts));
            for (tag, value) in leaves {
                b.child_text(format!("f{tag}"), format!("v{value}"));
            }
            b.finish()
        })
}

/// A random join query over the flat vocabulary: between 1 and 3 value joins
/// pairing random fields.
fn flat_query_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec((0usize..6, 0usize..6), 1..4).prop_map(|pairs| {
        let mut left_preds = Vec::new();
        let mut right_preds = Vec::new();
        let mut joins = Vec::new();
        for (i, (lf, rf)) in pairs.iter().enumerate() {
            left_preds.push(format!("[.//f{lf}->l{i}]"));
            right_preds.push(format!("[.//f{rf}->r{i}]"));
            joins.push(format!("l{i}=r{i}"));
        }
        format!(
            "S//item->lr{} FOLLOWED BY{{{}, 1000}} S//item->rr{}",
            left_preds.join(""),
            joins.join(" AND "),
            right_preds.join("")
        )
    })
}

// ---------------------------------------------------------------------------
// XML layer
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xml_serialize_parse_roundtrip(doc in flat_document_strategy()) {
        let xml = serialize(&doc);
        let parsed = parse_document(&xml).unwrap();
        prop_assert_eq!(parsed.len(), doc.len());
        for id in doc.node_ids() {
            prop_assert_eq!(parsed.node(id).tag(), doc.node(id).tag());
            prop_assert_eq!(parsed.string_value(id), doc.string_value(id));
        }
        parsed.check_invariants().unwrap();
    }

    #[test]
    fn document_preorder_invariants(doc in flat_document_strategy()) {
        doc.check_invariants().unwrap();
        // Every non-root node's parent has a smaller pre-order id.
        for node in doc.nodes() {
            if let Some(p) = node.parent() {
                prop_assert!(p.raw() < node.id().raw());
            }
        }
        // string_value of the root contains every leaf's value.
        let root_value = doc.string_value(mmqjp_xml::NodeId::ROOT);
        for leaf in doc.leaves() {
            prop_assert!(root_value.contains(&doc.string_value(leaf)));
        }
    }
}

// ---------------------------------------------------------------------------
// Relational layer
// ---------------------------------------------------------------------------

fn small_relation(rows: Vec<(i64, i64)>) -> Relation {
    let mut r = Relation::new(Schema::new(["a", "b"]));
    for (a, b) in rows {
        r.push_values(vec![Value::Int(a), Value::Int(b)]).unwrap();
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hash_join_matches_nested_loop(
        left in prop::collection::vec((0i64..5, 0i64..5), 0..12),
        right in prop::collection::vec((0i64..5, 0i64..5), 0..12),
    ) {
        let l = small_relation(left.clone());
        let r = small_relation(right.clone());
        let joined = ops::hash_join(&l, &r, &["b"], &["a"]).unwrap();
        // Reference: nested loops.
        let mut expected = 0usize;
        for (_, lb) in &left {
            for (ra, _) in &right {
                if lb == ra {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(joined.len(), expected);
    }

    #[test]
    fn semi_and_anti_join_partition_the_left_side(
        left in prop::collection::vec((0i64..5, 0i64..5), 0..12),
        right in prop::collection::vec((0i64..5, 0i64..5), 0..12),
    ) {
        let l = small_relation(left);
        let r = small_relation(right);
        let semi = ops::semi_join(&l, &r, &["b"], &["a"]).unwrap();
        let anti = ops::anti_join(&l, &r, &["b"], &["a"]).unwrap();
        prop_assert_eq!(semi.len() + anti.len(), l.len());
    }

    #[test]
    fn distinct_is_idempotent_and_order_insensitive(
        rows in prop::collection::vec((0i64..4, 0i64..4), 0..20),
    ) {
        let r = small_relation(rows);
        let d1 = r.distinct();
        let d2 = d1.distinct();
        prop_assert_eq!(d1.len(), d2.len());
        prop_assert_eq!(d1.sorted(), r.sorted().distinct().sorted());
    }

    #[test]
    fn projection_never_increases_cardinality(
        rows in prop::collection::vec((0i64..5, 0i64..5), 0..20),
    ) {
        let r = small_relation(rows);
        let p = ops::project(&r, &["a"]).unwrap();
        prop_assert_eq!(p.len(), r.len());
        prop_assert!(p.distinct().len() <= r.distinct().len());
    }

    /// The central compiled-execution property: on random relations, schemas
    /// and conjunctive queries, [`PhysicalPlan`] execution reproduces the
    /// interpreted [`Database::evaluate`] path *byte for byte* — same rows,
    /// same row order — both in bag form and with inline dedup, and both
    /// over flat and chunked (segmented) inputs.
    ///
    /// The row generator is biased toward the columnar kernel's edge
    /// shapes: empty relations (empty-selection short-circuit), single-row
    /// relations (degenerate build sides), and all-duplicate rows (every
    /// join key collides in one hash chain; inline dedup collapses the
    /// output), alongside the general case. Each relation draws a shape
    /// code: 0 empties it, 1 keeps a single row, 2 repeats the first row,
    /// 3.. leaves the rows as generated.
    #[test]
    fn compiled_plans_match_the_interpreted_conjunctive_queries(
        rel_specs in prop::collection::vec(
            (
                1usize..4,
                0usize..6,
                prop::collection::vec((0i64..4, 0i64..4, 0i64..4), 0..8),
            ),
            1..4,
        ),
        atom_specs in prop::collection::vec(
            (0usize..4, prop::collection::vec(0usize..8, 3..4)),
            1..5,
        ),
        head_picks in prop::collection::vec(0usize..8, 0..4),
    ) {
        // Random relations r0..rk with arities 1..=3 and small-int rows (so
        // joins fire and duplicates occur).
        let relations: Vec<(String, Relation)> = rel_specs
            .iter()
            .enumerate()
            .map(|(i, (arity, shape, rows))| {
                let shaped: Vec<(i64, i64, i64)> = match shape {
                    0 => Vec::new(),
                    1 => rows.iter().take(1).copied().collect(),
                    2 => vec![*rows.first().unwrap_or(&(0, 0, 0)); rows.len().max(2)],
                    _ => rows.clone(),
                };
                let mut r = Relation::new(Schema::new((0..*arity).map(|c| format!("c{c}"))));
                for (a, b, c) in shaped {
                    let vals = [a, b, c];
                    r.push_values(vals[..*arity].iter().copied().map(Value::Int).collect())
                        .unwrap();
                }
                (format!("r{i}"), r)
            })
            .collect();

        // Random body: each atom picks a relation and fills its positions
        // with variables v0..v4 or constants 0..2 (repeated variables and
        // cross products arise naturally).
        let mut cq_atoms = Vec::new();
        for (rel_pick, term_codes) in &atom_specs {
            let (name, rel) = &relations[rel_pick % relations.len()];
            let terms: Vec<Term> = term_codes[..rel.schema().arity()]
                .iter()
                .map(|&t| {
                    if t < 5 {
                        Term::var(format!("v{t}"))
                    } else {
                        Term::constant((t - 5) as i64)
                    }
                })
                .collect();
            cq_atoms.push(Atom::new(name.clone(), terms));
        }
        // Head: a random subset of the body variables (always bound).
        let mut body_vars: Vec<String> = Vec::new();
        for a in &cq_atoms {
            for v in a.variables() {
                if !body_vars.iter().any(|b| b == v) {
                    body_vars.push(v.to_owned());
                }
            }
        }
        let mut head: Vec<String> = Vec::new();
        if !body_vars.is_empty() {
            for p in &head_picks {
                let v = &body_vars[p % body_vars.len()];
                if !head.contains(v) {
                    head.push(v.clone());
                }
            }
        }
        let mut cq = ConjunctiveQuery::new(head);
        for a in cq_atoms {
            cq.push_atom(a);
        }

        // Reference: the interpreted path.
        let mut db = Database::new();
        for (name, rel) in &relations {
            db.register(name.clone(), rel.clone());
        }
        let interpreted = db.evaluate(&cq).unwrap();

        // Compiled path over flat borrowed inputs.
        let plan = PhysicalPlan::compile(&cq, |name| {
            relations
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, r)| r.schema().arity())
        })
        .unwrap();
        let flat_inputs: Vec<PlanInput<'_>> = plan
            .relations()
            .iter()
            .map(|name| PlanInput::from(&relations.iter().find(|(n, _)| n == name).unwrap().1))
            .collect();
        let mut scratch = ExecScratch::new();
        let compiled = plan.execute(&flat_inputs, &mut scratch, false);
        prop_assert_eq!(&compiled, &interpreted, "row-for-row equal to the interpreter");
        let deduped = plan.execute(&flat_inputs, &mut scratch, true);
        prop_assert_eq!(&deduped, &interpreted.distinct(), "inline dedup == distinct()");

        // Chunked (segmented) inputs: split every relation into buckets
        // preserving row order; results must not change.
        let segmented: Vec<SegmentedRelation> = plan
            .relations()
            .iter()
            .map(|name| {
                let rel = &relations.iter().find(|(n, _)| n == name).unwrap().1;
                let mut seg = SegmentedRelation::new(rel.schema().clone());
                for (i, t) in rel.iter().enumerate() {
                    seg.push((i / 3) as u64, t.to_vec()).unwrap();
                }
                seg
            })
            .collect();
        let chunked: Vec<ChunkedRows<'_>> =
            segmented.iter().map(ChunkedRows::from_segmented).collect();
        let chunked_inputs: Vec<PlanInput<'_>> = chunked.iter().map(PlanInput::from).collect();
        let via_chunks = plan.execute(&chunked_inputs, &mut scratch, false);
        prop_assert_eq!(&via_chunks, &interpreted, "chunked inputs are equivalent");
        prop_assert!(scratch.scratch_reuses() >= 2, "scratch is pooled across executions");
    }
}

// ---------------------------------------------------------------------------
// XSCL layer
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_parse_display_roundtrip(text in flat_query_strategy()) {
        let q = parse_query(&text).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        prop_assert_eq!(q.predicates(), q2.predicates());
        prop_assert_eq!(q.window(), q2.window());
        prop_assert_eq!(q.op(), q2.op());
    }

    #[test]
    fn templates_are_invariant_under_variable_renaming(text in flat_query_strategy()) {
        // Renaming the user variables (l{i} -> user{i}, r{i} -> peer{i})
        // must not change the template.
        let renamed = text.replace('l', "user").replace('r', "peer");
        let g1 = ReducedGraph::from_join_graph(
            &JoinGraph::from_query(&normalize_query(&parse_query(&text).unwrap()).unwrap().query)
                .unwrap(),
        );
        let g2 = ReducedGraph::from_join_graph(
            &JoinGraph::from_query(
                &normalize_query(&parse_query(&renamed).unwrap()).unwrap().query,
            )
            .unwrap(),
        );
        let mut catalog = TemplateCatalog::new();
        let m1 = catalog.insert(&g1);
        let m2 = catalog.insert(&g2);
        prop_assert_eq!(m1.template, m2.template);
    }

    #[test]
    fn reduction_keeps_exactly_the_join_relevant_nodes(text in flat_query_strategy()) {
        let q = normalize_query(&parse_query(&text).unwrap()).unwrap().query;
        let graph = JoinGraph::from_query(&q).unwrap();
        let reduced = ReducedGraph::from_join_graph(&graph);
        // Every value-join edge of the query maps to an edge of the reduced
        // graph, and every reduced leaf is a join node.
        prop_assert_eq!(reduced.num_value_joins() <= graph.num_value_joins(), true);
        prop_assert!(reduced.num_value_joins() >= 1);
        for side in [mmqjp_xscl::Side::Left, mmqjp_xscl::Side::Right] {
            let tree = reduced.tree(side);
            for (i, node) in tree.nodes.iter().enumerate() {
                if tree.children(i).is_empty() {
                    prop_assert!(node.is_join_node, "leaf {i} must be a join node");
                }
            }
        }
    }

    #[test]
    fn normalization_is_idempotent(text in flat_query_strategy()) {
        let q = parse_query(&text).unwrap();
        let once = normalize_query(&q).unwrap().query;
        let twice = normalize_query(&once).unwrap().query;
        prop_assert_eq!(once.predicates(), twice.predicates());
        let (l1, r1) = once.blocks().unwrap();
        let (l2, r2) = twice.blocks().unwrap();
        prop_assert_eq!(l1.pattern.signature(), l2.pattern.signature());
        prop_assert_eq!(r1.pattern.signature(), r2.pattern.signature());
    }
}

// ---------------------------------------------------------------------------
// Witness routing (hybrid sharding)
// ---------------------------------------------------------------------------

/// The witness rows of a batch as a sorted multiset of rendered rows.
/// Routing may append a pattern's rows in a different order than direct
/// evaluation (the subscribed edge list is merge-ordered, the requested map
/// insertion-ordered), so batches are compared order-insensitively.
fn witness_multiset(batch: &WitnessBatch) -> Vec<String> {
    let mut rows: Vec<String> = batch
        .rbin_w
        .iter()
        .map(|t| format!("bin{:?}", t.to_vec()))
        .chain(batch.rdoc_w.iter().map(|t| format!("doc{:?}", t.to_vec())))
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The hybrid topology's routing theorem: for any query population,
    /// shard assignment and document stream, the witness rows routed to a
    /// shard are exactly the rows that shard would have derived by running
    /// Stage 1 over its own requested-edge map — rows partition along the
    /// subscription map, nothing is duplicated or lost. A row reaches a
    /// shard if and only if one of the shard's own patterns derives it, and
    /// the union across shards is exactly the single-engine Stage-1 output.
    #[test]
    fn witness_routing_is_a_partition_of_stage1_output(
        query_texts in prop::collection::vec(flat_query_strategy(), 1..8),
        mut docs in prop::collection::vec(flat_document_strategy(), 1..5),
        num_shards in 1usize..6,
    ) {
        for (i, d) in docs.iter_mut().enumerate() {
            d.set_id(DocId(i as u64 + 1));
            d.set_timestamp(Timestamp((i as u64 + 1) * 10));
        }

        // Harvest each query's (pattern, requested edges) registrations from
        // a scratch engine, exactly as the sharded front stage does, and
        // build the merged pattern set + router for a round-robin shard
        // assignment (the routing theorem must hold for any assignment).
        let mut engine = MmqjpEngine::new(EngineConfig::mmqjp());
        let mut ids = Vec::new();
        for t in &query_texts {
            ids.push(engine.register_query_text(t).unwrap());
        }
        let mut index = PatternIndex::new();
        let mut union_req: HashMap<PatternId, Vec<(PatternNodeId, PatternNodeId)>> =
            HashMap::new();
        let mut shard_req: Vec<HashMap<PatternId, Vec<(PatternNodeId, PatternNodeId)>>> =
            vec![HashMap::new(); num_shards];
        let mut router = WitnessRouter::new();
        let mut everything = WitnessRouter::new();
        for (i, id) in ids.iter().enumerate() {
            let shard = i % num_shards;
            for reg in &engine.registry().query(*id).unwrap().registrations {
                for (pattern, edges) in [
                    (&reg.prev_pattern, &reg.prev_edges),
                    (&reg.cur_pattern, &reg.cur_edges),
                ] {
                    let pid = index.register(pattern.clone());
                    for req in [
                        union_req.entry(pid).or_default(),
                        shard_req[shard].entry(pid).or_default(),
                    ] {
                        for e in edges {
                            if !req.contains(e) {
                                req.push(*e);
                            }
                        }
                    }
                    router.subscribe(shard, pid, edges);
                    everything.subscribe(0, pid, edges);
                }
            }
        }

        // Route every document's Stage-1 output; `everything` plays the
        // single-engine reference (one shard subscribed to it all).
        let interner = Arc::new(StringInterner::new());
        let mut routed: Vec<WitnessBatch> =
            (0..num_shards).map(|_| WitnessBatch::new()).collect();
        let mut global = vec![WitnessBatch::new()];
        for doc in &docs {
            let bindings = index.evaluate_edge_bindings(doc, &union_req);
            router
                .route_document(doc, &bindings, &index, &interner, &mut routed)
                .unwrap();
            everything
                .route_document(doc, &bindings, &index, &interner, &mut global)
                .unwrap();
        }

        // Every shard sees every document's retention-ledger row, witnesses
        // or not — window pruning depends on it.
        for batch in &routed {
            prop_assert_eq!(batch.rdoc_ts_w.len(), docs.len());
            prop_assert_eq!(batch.doc_ids.len(), docs.len());
        }

        // Each shard's routed rows are exactly what it would self-derive
        // from its own requested-edge map. (Patterns absent from a map get
        // the all-edges fallback, so the self-derived evaluation must drop
        // bindings of patterns the shard never requested.)
        for (shard, req) in shard_req.iter().enumerate() {
            let mut derived = WitnessBatch::new();
            for doc in &docs {
                let bindings: Vec<_> = index
                    .evaluate_edge_bindings(doc, req)
                    .into_iter()
                    .filter(|(pid, _)| req.contains_key(pid))
                    .collect();
                let with_patterns: Vec<_> = bindings
                    .iter()
                    .map(|(pid, b)| (index.pattern(*pid), b.clone()))
                    .collect();
                derived.add_document(doc, &with_patterns, &interner).unwrap();
            }
            prop_assert_eq!(
                witness_multiset(&routed[shard]),
                witness_multiset(&derived),
                "shard {} routed rows diverge from self-derived Stage-1",
                shard
            );
        }

        // Nothing is lost or invented: the set union of routed rows equals
        // the single-subscriber reference's rows. (Set, not multiset:
        // structurally distinct patterns share canonical variables, so two
        // patterns on different shards may each legitimately derive the same
        // witness row — the reference's per-document dedup collapses those
        // into one row while every subscribing shard keeps its own copy.)
        let mut union_rows: Vec<String> = routed.iter().flat_map(witness_multiset).collect();
        union_rows.sort();
        union_rows.dedup();
        prop_assert_eq!(
            union_rows,
            witness_multiset(&global[0]),
            "routed union diverges from the single-engine Stage-1 output"
        );

        // Degenerate exact partition: one shard must receive the reference
        // output row for row.
        if num_shards == 1 {
            prop_assert_eq!(witness_multiset(&routed[0]), witness_multiset(&global[0]));
        }
    }
}

// ---------------------------------------------------------------------------
// Engine-level properties
// ---------------------------------------------------------------------------

/// One step of a random subscription-churn script.
#[derive(Debug, Clone)]
enum ChurnOp {
    /// Register this query text.
    Register(String),
    /// Unregister one of the currently live registrations (`pick % live`
    /// at replay time; a no-op when none are live).
    Unregister(usize),
    /// Process this document batch.
    Batch(Vec<Document>),
}

/// Decode the raw generated tuples into a churn script: codes 0–1 register,
/// 2 unregisters, 3–5 process a batch (so documents dominate the mix).
fn decode_churn_ops(raw: Vec<(usize, String, usize, Vec<Document>)>) -> Vec<ChurnOp> {
    raw.into_iter()
        .map(|(code, query, pick, docs)| match code {
            0 | 1 => ChurnOp::Register(query),
            2 => ChurnOp::Unregister(pick),
            _ => ChurnOp::Batch(docs),
        })
        .collect()
}

proptest! {
    // End-to-end cases are more expensive; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_modes_produce_identical_matches(
        query_texts in prop::collection::vec(flat_query_strategy(), 1..12),
        mut docs in prop::collection::vec(flat_document_strategy(), 1..6),
    ) {
        // Make timestamps strictly increasing so FOLLOWED BY is
        // deterministic regardless of generated values.
        for (i, d) in docs.iter_mut().enumerate() {
            d.set_timestamp(Timestamp((i as u64 + 1) * 10));
        }
        let mut reference: Option<Vec<_>> = None;
        for mode in [
            ProcessingMode::Sequential,
            ProcessingMode::Mmqjp,
            ProcessingMode::MmqjpViewMat,
        ] {
            let config = EngineConfig { mode, ..EngineConfig::default() }
                .with_retain_documents(false);
            let mut engine = MmqjpEngine::new(config);
            for t in &query_texts {
                engine.register_query_text(t).unwrap();
            }
            let keys = match_keys(&run_stream(&mut engine, docs.clone()));
            match &reference {
                None => reference = Some(keys),
                Some(r) => prop_assert_eq!(r, &keys, "mode {:?} disagrees", mode),
            }
        }
    }

    #[test]
    fn sharded_engine_equals_single_engine_and_stats_sum(
        query_texts in prop::collection::vec(flat_query_strategy(), 1..10),
        mut docs in prop::collection::vec(flat_document_strategy(), 1..6),
        num_shards in 1usize..8,
        mode_index in 0usize..3,
        batch_size in 1usize..4,
    ) {
        for (i, d) in docs.iter_mut().enumerate() {
            d.set_timestamp(Timestamp((i as u64 + 1) * 10));
        }
        let mode = [
            ProcessingMode::Sequential,
            ProcessingMode::Mmqjp,
            ProcessingMode::MmqjpViewMat,
        ][mode_index];
        let config = EngineConfig { mode, ..EngineConfig::default() }
            .with_retain_documents(false);

        let mut single = MmqjpEngine::new(config.clone());
        let mut sharded = ShardedEngine::new(config.with_num_shards(num_shards));
        for t in &query_texts {
            let a = single.register_query_text(t).unwrap();
            let b = sharded.register_query_text(t).unwrap();
            prop_assert_eq!(a, b, "query id assignment diverged");
        }

        // Batched processing: the sharded output must equal the single
        // engine's canonically-ordered output batch for batch.
        for chunk in docs.chunks(batch_size) {
            let mut expected = single.process_batch(chunk.to_vec()).unwrap();
            sort_matches(&mut expected);
            let got = sharded.process_batch(chunk.to_vec()).unwrap();
            prop_assert_eq!(&got, &expected, "sharded({}) batch diverged", num_shards);
        }

        // Merged stats are exactly the field-wise sum of the per-shard stats.
        let per_shard = sharded.shard_stats().unwrap();
        prop_assert_eq!(per_shard.len(), num_shards);
        let merged = sharded.stats().unwrap();
        prop_assert_eq!(merged, per_shard.iter().copied().sum());
        prop_assert_eq!(merged.queries_registered, query_texts.len());
        prop_assert_eq!(merged.documents_processed, docs.len() * num_shards);
        prop_assert_eq!(merged.results_emitted,
            per_shard.iter().map(|s| s.results_emitted).sum::<usize>());
    }

    #[test]
    fn random_churn_interleavings_match_the_survivor_engine(
        raw_ops in prop::collection::vec(
            (
                0usize..6,
                flat_query_strategy(),
                0usize..64,
                prop::collection::vec(flat_document_strategy(), 1..3),
            ),
            1..16,
        ),
        mode_index in 0usize..3,
    ) {
        let ops = decode_churn_ops(raw_ops);
        let mode = [
            ProcessingMode::Sequential,
            ProcessingMode::Mmqjp,
            ProcessingMode::MmqjpViewMat,
        ][mode_index];
        let config = EngineConfig { mode, ..EngineConfig::default() }
            .with_retain_documents(false);

        // Resolve unregister targets against the ops seen so far, so every
        // script is valid: an Unregister picks among the still-live earlier
        // registrations (and becomes a no-op when none are live).
        let mut churned = MmqjpEngine::new(config.clone());
        let mut reference = MmqjpEngine::new(config);
        let mut churned_ids: Vec<mmqjp_xscl::QueryId> = Vec::new();
        let mut live: Vec<usize> = Vec::new(); // ordinals of live registrations
        let mut doomed: Vec<usize> = Vec::new();

        // Pass 1: determine which registrations survive (to know what the
        // reference engine must hold) without touching an engine.
        let mut reg_count = 0usize;
        for op in &ops {
            match op {
                ChurnOp::Register(_) => {
                    live.push(reg_count);
                    reg_count += 1;
                }
                ChurnOp::Unregister(pick) => {
                    if !live.is_empty() {
                        doomed.push(live.remove(pick % live.len()));
                    }
                }
                ChurnOp::Batch(_) => {}
            }
        }
        let doomed_set: std::collections::HashSet<usize> = doomed.iter().copied().collect();

        // Pass 2: replay. The reference engine registers only survivors, at
        // the same stream positions.
        let mut live: Vec<usize> = Vec::new();
        let mut reg_ordinal = 0usize;
        let mut ts = 0u64;
        let mut survivors = std::collections::HashSet::new();
        let mut churned_of_ref = std::collections::HashMap::new();
        let mut total_unregs = 0usize;
        let mut max_seen_id = None::<mmqjp_xscl::QueryId>;
        for op in &ops {
            match op {
                ChurnOp::Register(text) => {
                    let cid = churned.register_query_text(text).unwrap();
                    // No QueryId reuse, ever: ids are strictly increasing.
                    if let Some(prev) = max_seen_id {
                        prop_assert!(cid > prev, "id {cid:?} reused after {prev:?}");
                    }
                    max_seen_id = Some(cid);
                    churned_ids.push(cid);
                    if !doomed_set.contains(&reg_ordinal) {
                        survivors.insert(cid);
                        let rid = reference.register_query_text(text).unwrap();
                        churned_of_ref.insert(rid, cid);
                    }
                    live.push(reg_ordinal);
                    reg_ordinal += 1;
                }
                ChurnOp::Unregister(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let victim = live.remove(pick % live.len());
                    let before = churned.stats();
                    churned.unregister_query(churned_ids[victim]).unwrap();
                    total_unregs += 1;
                    let after = churned.stats();
                    // Monotonicity under pure unregister: the live template
                    // and pattern populations never grow.
                    prop_assert!(after.templates <= before.templates);
                    prop_assert!(after.distinct_patterns <= before.distinct_patterns);
                    prop_assert_eq!(after.queries_registered, before.queries_registered - 1);
                }
                ChurnOp::Batch(docs) => {
                    let mut batch = docs.clone();
                    for d in batch.iter_mut() {
                        ts += 10;
                        d.set_timestamp(Timestamp(ts));
                    }
                    let mut got: Vec<_> = churned
                        .process_batch(batch.clone())
                        .unwrap()
                        .into_iter()
                        .filter(|m| survivors.contains(&m.query))
                        .collect();
                    let mut expected: Vec<_> = reference
                        .process_batch(batch)
                        .unwrap()
                        .into_iter()
                        .map(|mut m| {
                            m.query = churned_of_ref[&m.query];
                            m
                        })
                        .collect();
                    sort_matches(&mut got);
                    sort_matches(&mut expected);
                    prop_assert_eq!(got, expected, "churned diverged in {:?}", mode);
                }
            }
        }
        // Exact lifecycle counters.
        let stats = churned.stats();
        prop_assert_eq!(stats.queries_unregistered, total_unregs);
        prop_assert_eq!(stats.queries_registered, churned_ids.len() - total_unregs);
        prop_assert_eq!(stats.queries_registered, survivors.len());
        // The surviving populations agree with the reference engine.
        let ref_stats = reference.stats();
        prop_assert_eq!(stats.templates, ref_stats.templates);
        prop_assert_eq!(stats.distinct_patterns, ref_stats.distinct_patterns);
        // After the whole interleaving, every refcounted structure balances.
        prop_assert!(churned.audit().is_empty(), "churned engine audit failed");
        prop_assert!(reference.audit().is_empty(), "reference engine audit failed");
    }

    /// The invariant auditor itself, fuzzed: replay a random
    /// register/unregister/batch interleaving against a single engine and a
    /// hybrid sharded engine, auditing after *every* operation — any
    /// refcount drift, index corruption, or router desync shows up at the
    /// first operation that introduces it.
    #[test]
    fn invariant_audit_stays_clean_under_random_churn(
        raw_ops in prop::collection::vec(
            (
                0usize..6,
                flat_query_strategy(),
                0usize..64,
                prop::collection::vec(flat_document_strategy(), 1..3),
            ),
            1..12,
        ),
        num_shards in 1usize..5,
        front_pool in 0usize..3,
    ) {
        let ops = decode_churn_ops(raw_ops);
        let config = EngineConfig::mmqjp().with_retain_documents(false);
        let mut single = MmqjpEngine::new(config.clone());
        let mut sharded = ShardedEngine::new(
            config.with_num_shards(num_shards).with_front_pool(front_pool),
        );
        let mut live: Vec<mmqjp_xscl::QueryId> = Vec::new();
        let mut ts = 0u64;
        for (step, op) in ops.iter().enumerate() {
            match op {
                ChurnOp::Register(text) => {
                    let a = single.register_query_text(text).unwrap();
                    let b = sharded.register_query_text(text).unwrap();
                    prop_assert_eq!(a, b);
                    live.push(a);
                }
                ChurnOp::Unregister(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let victim = live.remove(pick % live.len());
                    single.unregister_query(victim).unwrap();
                    sharded.unregister_query(victim).unwrap();
                }
                ChurnOp::Batch(docs) => {
                    let mut batch = docs.clone();
                    for d in batch.iter_mut() {
                        ts += 10;
                        d.set_timestamp(Timestamp(ts));
                    }
                    single.process_batch(batch.clone()).unwrap();
                    sharded.process_batch(batch).unwrap();
                }
            }
            let violations = single.audit();
            prop_assert!(
                violations.is_empty(),
                "single-engine audit failed after op #{}: {:?}", step, violations
            );
            let violations = sharded.audit().unwrap();
            prop_assert!(
                violations.is_empty(),
                "sharded audit failed after op #{} ({} shards, front {}): {:?}",
                step, num_shards, front_pool, violations
            );
        }
    }

    #[test]
    fn matches_respect_value_equality(
        query_text in flat_query_strategy(),
        mut docs in prop::collection::vec(flat_document_strategy(), 2..5),
    ) {
        for (i, d) in docs.iter_mut().enumerate() {
            d.set_timestamp(Timestamp((i as u64 + 1) * 10));
        }
        let mut engine = MmqjpEngine::new(EngineConfig::mmqjp());
        engine.register_query_text(&query_text).unwrap();
        let query = parse_query(&query_text).unwrap();
        let predicates: Vec<ValueJoin> = query.predicates().to_vec();
        let docs_by_seq: Vec<Document> = docs.clone();

        let matches = run_stream(&mut engine, docs);
        for m in &matches {
            // Soundness: for every reported match, the joined string values
            // are really equal, and the left document precedes the right one.
            prop_assert!(m.left_doc.raw() < m.right_doc.raw());
            let left_doc = &docs_by_seq[(m.left_doc.raw() - 1) as usize];
            let right_doc = &docs_by_seq[(m.right_doc.raw() - 1) as usize];
            for _p in &predicates {
                // Bindings are reported under canonical names; check that
                // every left-side binding value that participates in some
                // join has an equal right-side counterpart binding.
                let mut left_values: Vec<String> = Vec::new();
                let mut right_values: Vec<String> = Vec::new();
                for b in &m.bindings {
                    if b.doc == m.left_doc {
                        left_values.push(left_doc.string_value(b.node));
                    } else {
                        right_values.push(right_doc.string_value(b.node));
                    }
                }
                // At least one pair of equal values must exist (the joined
                // leaves); root bindings are included in the lists, so we
                // check intersection rather than full equality.
                let any_equal = left_values.iter().any(|lv| right_values.contains(lv));
                prop_assert!(any_equal, "no equal joined values in match {m}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Malformed-input hardening
// ---------------------------------------------------------------------------

/// Feed a mutated serialization of a valid document to both parsers and
/// check the hardening contract: neither panics, both return a typed result,
/// and they agree on accept vs. reject. When both accept, they must accept
/// the *same* document (bytes, not just verdicts).
fn check_parsers_on_corrupt_bytes(original: &Document, seed: u64) {
    let bytes = mmqjp_core::corrupt_bytes(&serialize(original), seed);
    // The parsers take `&str`; bytes that are not UTF-8 never reach them.
    let Ok(text) = String::from_utf8(bytes) else {
        return;
    };
    let dom = parse_document(&text);
    let streaming = mmqjp_xml::parse_document_streaming(&text);
    assert_eq!(
        dom.is_ok(),
        streaming.is_ok(),
        "DOM and streaming parsers disagree on mutated input:\n  dom: {dom:?}\n  streaming: {streaming:?}\n  input: {text:?}"
    );
    if let (Ok(dom), Ok(streaming)) = (dom, streaming) {
        assert_eq!(
            serialize(&dom),
            serialize(&streaming),
            "parsers accepted mutated input but built different documents: {text:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte mutations of a valid document yield typed errors —
    /// never a panic — from both the streaming pull parser and the DOM
    /// parser, and the two always agree on accept/reject.
    #[test]
    fn corrupted_documents_fail_typed_and_parsers_agree(
        doc in flat_document_strategy(),
        seed in 0u64..1_000_000_000,
    ) {
        check_parsers_on_corrupt_bytes(&doc, seed);
    }
}

/// The same contract against deeper, realistic markup (the paper's running
/// example) across a fixed sweep of mutation seeds.
#[test]
fn corrupted_rss_documents_fail_typed_and_parsers_agree() {
    let d1 = mmqjp_integration_tests::d1();
    let d2 = mmqjp_integration_tests::d2();
    for seed in 0..512u64 {
        check_parsers_on_corrupt_bytes(&d1, seed);
        check_parsers_on_corrupt_bytes(&d2, seed);
    }
}
