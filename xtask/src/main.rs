//! Workspace lint pass, run as `cargo run -p xtask -- lint`.
//!
//! Four dependency-free static checks over the workspace sources:
//!
//! 1. **Panic-free hot paths** — non-test code in `crates/core/src`,
//!    `crates/relational/src`, `crates/xml/src`, `crates/xpath/src` and
//!    `crates/workload/src` must not call `.unwrap()`, `.expect(…)` or
//!    `panic!(…)`. A site can be waived with a `// lint:allow <reason>`
//!    comment on the same line or the line directly above; the reason is
//!    mandatory so every waiver documents why the invariant cannot fail.
//! 2. **`#![forbid(unsafe_code)]`** — every workspace member's crate root
//!    must carry the attribute, vendored stubs included.
//! 3. **`EngineStats` / `PhaseTimings` AddAssign parity** — every field
//!    declared on the structs in `crates/core/src/stats.rs` must be folded
//!    in the matching `AddAssign` impl (and vice versa), so sharded stats
//!    aggregation can never silently drop a counter.
//! 4. **Bench env-var consistency** — every `MMQJP_BENCH_*` variable set in
//!    `.github/workflows/ci.yml` must be referenced somewhere under
//!    `crates/bench`, so CI knobs cannot silently rot.
//!
//! Exit code 0 when clean, 1 with one line per violation otherwise.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = workspace_root();
    match std::env::args().nth(1).as_deref() {
        Some("lint") => run_lint(&root),
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint   (got {:?})",
                other.unwrap_or("<none>")
            );
            ExitCode::from(2)
        }
    }
}

/// The workspace root is the parent of the xtask crate directory.
fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    Path::new(&manifest)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_lint(root: &Path) -> ExitCode {
    let mut violations = Vec::new();
    check_panic_free(root, &mut violations);
    check_forbid_unsafe(root, &mut violations);
    check_stats_parity(root, &mut violations);
    check_bench_env_vars(root, &mut violations);

    if violations.is_empty() {
        println!("xtask lint: all checks passed");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("lint: {v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Check 1: no unwrap/expect/panic in non-test core + relational code.
// ---------------------------------------------------------------------------

/// Directories (scanned recursively) or single files held to the
/// panic-free rule. Everything that runs inside a worker thread of the
/// sharded topology is covered wholesale — `xml`, `xpath` and `workload`
/// joined the rule with the self-healing pipeline, since a panic anywhere in
/// parse, match or generated-workload code is contained but still costs a
/// shard respawn.
const PANIC_FREE_PATHS: &[&str] = &[
    "crates/core/src",
    "crates/relational/src",
    "crates/xml/src",
    "crates/xpath/src",
    "crates/workload/src",
];
const BANNED: &[&str] = &[".unwrap()", ".expect(", "panic!("];

fn check_panic_free(root: &Path, out: &mut Vec<String>) {
    for path in PANIC_FREE_PATHS {
        let target = root.join(path);
        if target.is_file() {
            scan_file_for_panics(root, &target, out);
        } else {
            for file in rust_files(&target) {
                scan_file_for_panics(root, &file, out);
            }
        }
    }
}

fn scan_file_for_panics(root: &Path, file: &Path, out: &mut Vec<String>) {
    let Ok(text) = fs::read_to_string(file) else {
        out.push(format!("{}: unreadable", rel(root, file)));
        return;
    };
    let mut prev: &str = "";
    for (idx, line) in text.lines().enumerate() {
        // Everything from `#[cfg(test)] mod tests` onward is test code; the
        // unit-test modules in this workspace are the trailing item of their
        // files. An inline `#[cfg(test)]` attribute on a single method must
        // NOT stop the scan, so only the module form ends it.
        if prev.trim_start().starts_with("#[cfg(test)]")
            && line.trim_start().starts_with("mod tests")
        {
            break;
        }
        let waived = line.contains("lint:allow") || prev.contains("lint:allow");
        let trimmed = line.trim_start();
        if !trimmed.starts_with("//") && !waived {
            for pat in BANNED {
                if line.contains(pat) {
                    out.push(format!(
                        "{}:{}: `{}` in non-test code (add `// lint:allow <reason>` if the invariant is airtight)",
                        rel(root, file),
                        idx + 1,
                        pat
                    ));
                }
            }
        }
        prev = line;
    }
}

// ---------------------------------------------------------------------------
// Check 2: #![forbid(unsafe_code)] in every member crate root.
// ---------------------------------------------------------------------------

fn check_forbid_unsafe(root: &Path, out: &mut Vec<String>) {
    for member in workspace_members(root, out) {
        let crate_dir = root.join(&member);
        let Some(crate_root) = crate_root_file(&crate_dir) else {
            out.push(format!(
                "{member}: cannot locate crate root (lib.rs/main.rs)"
            ));
            continue;
        };
        match fs::read_to_string(&crate_root) {
            Ok(text) if text.contains("#![forbid(unsafe_code)]") => {}
            Ok(_) => out.push(format!(
                "{}: missing `#![forbid(unsafe_code)]`",
                rel(root, &crate_root)
            )),
            Err(_) => out.push(format!("{}: unreadable", rel(root, &crate_root))),
        }
    }
}

/// Parse the `members = [...]` list out of the root Cargo.toml. Good enough
/// for this workspace's hand-written manifest; not a general TOML parser.
fn workspace_members(root: &Path, out: &mut Vec<String>) -> Vec<String> {
    let manifest = root.join("Cargo.toml");
    let Ok(text) = fs::read_to_string(&manifest) else {
        out.push("Cargo.toml: unreadable".into());
        return Vec::new();
    };
    let mut members = Vec::new();
    let mut in_list = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("members") && t.contains('[') {
            in_list = true;
        }
        if in_list {
            for piece in t.split('"').skip(1).step_by(2) {
                members.push(piece.to_owned());
            }
            if t.contains(']') {
                break;
            }
        }
    }
    if members.is_empty() {
        out.push("Cargo.toml: found no workspace members".into());
    }
    members
}

/// Resolve a member's crate-root source file: an explicit `[lib] path`,
/// else `src/lib.rs`, else `lib.rs` beside the manifest, else `src/main.rs`.
fn crate_root_file(crate_dir: &Path) -> Option<PathBuf> {
    if let Ok(manifest) = fs::read_to_string(crate_dir.join("Cargo.toml")) {
        let mut in_lib = false;
        for line in manifest.lines() {
            let t = line.trim();
            if t.starts_with('[') {
                in_lib = t == "[lib]";
            } else if in_lib && t.starts_with("path") {
                if let Some(p) = t.split('"').nth(1) {
                    return Some(crate_dir.join(p));
                }
            }
        }
    }
    for candidate in ["src/lib.rs", "lib.rs", "src/main.rs"] {
        let p = crate_dir.join(candidate);
        if p.is_file() {
            return Some(p);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Check 3: struct fields vs AddAssign body in crates/core/src/stats.rs.
// ---------------------------------------------------------------------------

fn check_stats_parity(root: &Path, out: &mut Vec<String>) {
    let path = root.join("crates/core/src/stats.rs");
    let Ok(text) = fs::read_to_string(&path) else {
        out.push("crates/core/src/stats.rs: unreadable".into());
        return;
    };
    for name in ["PhaseTimings", "EngineStats"] {
        let declared = struct_fields(&text, name);
        let folded = add_assign_fields(&text, name);
        if declared.is_empty() {
            out.push(format!("stats.rs: found no fields for struct {name}"));
            continue;
        }
        if folded.is_empty() {
            out.push(format!("stats.rs: found no AddAssign body for {name}"));
            continue;
        }
        for f in &declared {
            if !folded.contains(f) {
                out.push(format!(
                    "stats.rs: {name}::{f} is declared but never folded in AddAssign — sharded aggregation drops it"
                ));
            }
        }
        for f in &folded {
            if !declared.contains(f) {
                out.push(format!(
                    "stats.rs: AddAssign for {name} touches unknown field `{f}`"
                ));
            }
        }
    }
}

/// Field names of `pub struct <name> { ... }` (public named fields only).
fn struct_fields(text: &str, name: &str) -> Vec<String> {
    let header = format!("pub struct {name} {{");
    let mut fields = Vec::new();
    let mut in_struct = false;
    for line in text.lines() {
        if line.trim_start().starts_with(&header) {
            in_struct = true;
            continue;
        }
        if in_struct {
            let t = line.trim();
            if t == "}" {
                break;
            }
            if let Some(rest) = t.strip_prefix("pub ") {
                if let Some((field, _ty)) = rest.split_once(':') {
                    fields.push(field.trim().to_owned());
                }
            }
        }
    }
    fields
}

/// Fields assigned via `self.<field> +=` inside `impl AddAssign for <name>`.
fn add_assign_fields(text: &str, name: &str) -> Vec<String> {
    let header = format!("impl AddAssign for {name} {{");
    let mut fields = Vec::new();
    let mut in_impl = false;
    for line in text.lines() {
        if line.trim_start().starts_with(&header) {
            in_impl = true;
            continue;
        }
        if in_impl {
            if line.starts_with('}') {
                break;
            }
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("self.") {
                if let Some((field, _)) = rest.split_once(" +=") {
                    fields.push(field.trim().to_owned());
                }
            }
        }
    }
    fields
}

// ---------------------------------------------------------------------------
// Check 4: MMQJP_BENCH_* env vars in ci.yml must exist in crates/bench.
// ---------------------------------------------------------------------------

fn check_bench_env_vars(root: &Path, out: &mut Vec<String>) {
    let ci = root.join(".github/workflows/ci.yml");
    let Ok(ci_text) = fs::read_to_string(&ci) else {
        out.push(".github/workflows/ci.yml: unreadable".into());
        return;
    };
    let mut bench_text = String::new();
    for file in rust_files(&root.join("crates/bench")) {
        if let Ok(t) = fs::read_to_string(&file) {
            bench_text.push_str(&t);
        }
    }
    if bench_text.is_empty() {
        out.push("crates/bench: no sources found for env-var check".into());
        return;
    }
    let vars = env_var_names(&ci_text);
    if vars.is_empty() {
        out.push("ci.yml: found no MMQJP_BENCH_* variables (check the workflow)".into());
    }
    for var in vars {
        if !bench_text.contains(&var) {
            out.push(format!(
                "ci.yml sets {var} but nothing under crates/bench reads it"
            ));
        }
    }
}

/// Every distinct `MMQJP_BENCH_<IDENT>` token in the text.
fn env_var_names(text: &str) -> Vec<String> {
    const PREFIX: &str = "MMQJP_BENCH_";
    let mut names: Vec<String> = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(PREFIX) {
        let tail = &rest[pos..];
        let end = tail
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(tail.len());
        let name = tail[..end].to_owned();
        if !names.contains(&name) {
            names.push(name);
        }
        rest = &tail[end..];
    }
    names
}

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

/// All `.rs` files under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_var_names_are_extracted_and_deduped() {
        let text =
            "env:\n  MMQJP_BENCH_SCALE: smoke\n  MMQJP_BENCH_JSON: x\nMMQJP_BENCH_SCALE again";
        assert_eq!(
            env_var_names(text),
            vec![
                "MMQJP_BENCH_SCALE".to_owned(),
                "MMQJP_BENCH_JSON".to_owned()
            ]
        );
    }

    #[test]
    fn struct_and_add_assign_fields_parse() {
        let src = "pub struct Foo {\n    /// doc\n    pub a: usize,\n    pub b: u64,\n}\nimpl AddAssign for Foo {\n    fn add_assign(&mut self, rhs: Self) {\n        self.a += rhs.a;\n        self.b += rhs.b;\n    }\n}\n";
        assert_eq!(struct_fields(src, "Foo"), vec!["a", "b"]);
        assert_eq!(add_assign_fields(src, "Foo"), vec!["a", "b"]);
    }

    #[test]
    fn inline_cfg_test_attr_does_not_stop_the_scan() {
        // A `#[cfg(test)]` attribute on a single item must not hide the
        // unwrap that follows it; only `#[cfg(test)]` + `mod tests` ends
        // the scan.
        let src = "fn a() {\n    #[cfg(test)]\n    fn helper() {}\n    x.unwrap();\n}\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let dir = std::env::temp_dir().join("xtask-lint-test");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("scan_case.rs");
        fs::write(&file, src).unwrap();
        let mut out = Vec::new();
        scan_file_for_panics(&dir, &file, &mut out);
        assert_eq!(out.len(), 1, "violations: {out:?}");
        assert!(out[0].contains("scan_case.rs:4"), "{out:?}");
    }

    #[test]
    fn waivers_on_same_or_previous_line_are_honored() {
        let src = "fn a() {\n    x.unwrap(); // lint:allow checked above\n    // lint:allow preceding-line waiver\n    y.expect(\"ok\");\n    z.unwrap();\n}\n";
        let dir = std::env::temp_dir().join("xtask-lint-test");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("waiver_case.rs");
        fs::write(&file, src).unwrap();
        let mut out = Vec::new();
        scan_file_for_panics(&dir, &file, &mut out);
        assert_eq!(out.len(), 1, "violations: {out:?}");
        assert!(out[0].contains("waiver_case.rs:5"), "{out:?}");
    }
}
